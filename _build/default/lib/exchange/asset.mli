(** Transferable assets: documents (or any named good) and money.

    Money amounts are integer cents to keep arithmetic exact; the paper's
    dollar figures ($10/$20/$30 in Fig. 7) are stored as 1000/2000/3000. *)

type money = int
(** Amount in cents; always non-negative in a well-formed spec. *)

type t =
  | Document of string  (** a named digital good *)
  | Money of money  (** a payment *)

val document : string -> t

val money : money -> t
(** @raise Invalid_argument on a negative amount. *)

val dollars : int -> money
(** [dollars 10] is [1000] cents. *)

val is_money : t -> bool
val is_document : t -> bool

val amount : t -> money option
(** The payment amount, [None] for documents. *)

val value : t -> money
(** Monetary value: the amount for money, [0] for documents (a
    document's price lives in the deal that sells it, see {!Spec}). *)

val equal : t -> t -> bool
val compare : t -> t -> int
val pp : Format.formatter -> t -> unit
val pp_money : Format.formatter -> money -> unit
val to_string : t -> string

module Set : Set.S with type elt = t
module Map : Map.S with type key = t

module Bag : sig
  (** Multisets of assets — what a party is currently holding. Money is
      aggregated into a single balance; documents are counted. *)

  type asset = t
  type t

  val empty : t
  val add : asset -> t -> t

  val remove : asset -> t -> t option
  (** [None] when the bag lacks the asset (insufficient funds or the
      document absent). *)

  val holds : asset -> t -> bool
  val balance : t -> money
  val documents : t -> (string * int) list
  val of_list : asset list -> t
  val equal : t -> t -> bool
  val pp : Format.formatter -> t -> unit
end
