test/test_dot.ml: Alcotest Printf String Trust_graph
