(* The static analyzer's contract, checked against the dynamic oracle:
   over a seeded corpus of generated specs, every principal's static
   worst-case interval dominates the dynamic exposure ledger's peak
   under every behavior in the test battery — honest, and every
   defectable principal defecting Silent / Partial 1 / Partial 2 in
   lockstep. Specs the analyzer certifies (no TL013–TL016) never
   produce a dynamic Bound_exceeded for an honest party. Plus worked
   examples pinning the interval arithmetic, the counterexample
   schedule format, and the conflict rules. *)

open Exchange
module Absint = Trust_analyze.Absint
module Static_exposure = Trust_analyze.Static_exposure
module Conflict = Trust_analyze.Conflict
module Diagnostic = Trust_analyze.Diagnostic
module Lint = Trust_analyze.Lint
module Feasibility = Trust_core.Feasibility
module Harness = Trust_sim.Harness
module E = Trust_sim.Exposure
module Scenarios = Workload.Scenarios
module Gen = Workload.Gen
module Prng = Workload.Prng

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let spec_of_source src =
  match Trust_lang.Elaborate.from_string src with
  | Ok spec -> spec
  | Error e -> Alcotest.failf "fixture spec must elaborate: %s" e

let interval_for result party =
  match
    List.find_opt
      (fun (i : Absint.interval) -> Party.equal i.Absint.i_party party)
      result.Static_exposure.intervals
  with
  | Some i -> i
  | None -> Alcotest.failf "no interval for %s" (Party.name party)

(* --- worked examples ------------------------------------------------- *)

let test_example1_proved () =
  let r = Static_exposure.analyze Scenarios.example1 in
  check "verdict proved" true (r.Static_exposure.verdict = Static_exposure.Proved);
  check_int "no refuted intervals" 0 (List.length (Static_exposure.refuted r));
  check_int "no diagnostics" 0 (List.length (Static_exposure.diagnostics r));
  let b = interval_for r (Party.broker "b") in
  (* the broker's $8 purchase is its largest transfer and its peak *)
  check_int "broker bound" 800 b.Absint.i_bound;
  check_int "broker worst case" 800 b.Absint.i_hi;
  let c = interval_for r (Party.consumer "c") in
  (* the consumer pays into escrow and receives the document before its
     money is released — never at risk *)
  check_int "consumer worst case" 0 c.Absint.i_hi

let test_infeasible_vacuous () =
  let r = Static_exposure.analyze Scenarios.example2 in
  check "verdict vacuous" true (r.Static_exposure.verdict = Static_exposure.Vacuous);
  check_int "no intervals" 0 (List.length r.Static_exposure.intervals);
  check_int "no diagnostics" 0 (List.length (Static_exposure.diagnostics r))

(* Two escrowed sales to one buyer: stalling both deals after the
   document forwards stacks $16 of risk against a $10 bound. *)
let stacked_sales =
  {|principal p : producer
principal q : consumer
trusted t1
trusted t2
deal d1: q pays $10; p gives "x"; via t1
deal d2: q pays $6;  p gives "y"; via t2
split q : d2.buyer|}

let test_refutation_with_schedule () =
  let spec = spec_of_source stacked_sales in
  let r = Static_exposure.analyze spec in
  check "verdict refuted" true (r.Static_exposure.verdict = Static_exposure.Refuted);
  let p = interval_for r (Party.producer "p") in
  check_int "bound is the larger document" 1000 p.Absint.i_bound;
  check_int "honest peak stays within one deal" 1000 p.Absint.i_lo;
  check_int "stacked worst case" 1600 p.Absint.i_hi;
  (match p.Absint.i_witness.Absint.w_defector with
  | Some q -> check "the buyer is the defector" true (String.equal (Party.name q) "q")
  | None -> Alcotest.fail "refutation must name a defector");
  check "both deals are stalled" true
    (List.length p.Absint.i_witness.Absint.w_stalled = 2);
  (* the diagnostics: one TL016 for p, one TL017 with the schedule *)
  let diags = Static_exposure.diagnostics r in
  let codes = List.map (fun d -> Diagnostic.code_id d.Diagnostic.code) diags in
  Alcotest.(check (list string)) "diagnostic codes" [ "TL016"; "TL017" ] codes;
  let schedule = List.nth diags 1 in
  check "schedule notes present" true (List.length schedule.Diagnostic.notes > 1);
  check "schedule header names the defector" true
    (let h = List.hd schedule.Diagnostic.notes in
     String.length h >= 20 && String.sub h 0 20 = "schedule (defector q")

let test_witness_is_a_subsequence () =
  let spec = spec_of_source stacked_sales in
  let a =
    match (Feasibility.analyze spec).Feasibility.sequence with
    | Some seq -> Absint.of_sequence seq
    | None -> Alcotest.fail "stacked_sales must be feasible"
  in
  List.iter
    (fun (i : Absint.interval) ->
      let kept = i.Absint.i_witness.Absint.w_kept in
      (* indices strictly increase: the witness is a prefix-of-deal
         subsequence of the synthesized order, printable as a schedule *)
      let rec ascending = function
        | (a : Absint.astep) :: (b :: _ as rest) ->
          a.Absint.a_index < b.Absint.a_index && ascending rest
        | _ -> true
      in
      check (Party.name i.Absint.i_party ^ " witness ascends") true (ascending kept);
      check
        (Party.name i.Absint.i_party ^ " witness within sequence")
        true
        (List.length kept <= List.length a.Absint.steps))
    a.Absint.intervals

(* --- conflict rules --------------------------------------------------- *)

let no_loc _ = None
let no_loc2 _ _ = None

let test_double_spend_detected () =
  let spec =
    spec_of_source
      {|principal b : broker
principal c1 : consumer
principal c2 : consumer
trusted t1
trusted t2
deal s1: c1 pays $10; b gives "d"; via t1
deal s2: c2 pays $10; b gives "d"; via t2|}
  in
  match Conflict.double_spends ~deal_loc:no_loc spec with
  | [ d ] ->
    check "code is TL013" true (d.Diagnostic.code = Diagnostic.Double_spend);
    check "error severity" true (d.Diagnostic.severity = Diagnostic.Error);
    check_int "both deals in the notes" 2 (List.length d.Diagnostic.notes)
  | ds -> Alcotest.failf "expected one TL013, got %d diagnostics" (List.length ds)

let test_resale_is_not_double_spend () =
  (* example1's broker sells the document it acquires: supply 1, sales 1 *)
  check_int "example1 clean" 0
    (List.length (Conflict.double_spends ~deal_loc:no_loc Scenarios.example1));
  (* an honest two-copy reseller: acquires twice, sells twice *)
  let spec =
    spec_of_source
      {|principal b : broker
principal p1 : producer
principal p2 : producer
principal c1 : consumer
principal c2 : consumer
trusted t1
trusted t2
trusted t3
trusted t4
deal a1: b pays $5; p1 gives "d"; via t1
deal a2: b pays $5; p2 gives "d"; via t2
deal s1: c1 pays $10; b gives "d"; via t3
deal s2: c2 pays $10; b gives "d"; via t4|}
  in
  check_int "two-for-two reseller clean" 0
    (List.length (Conflict.double_spends ~deal_loc:no_loc spec))

let test_over_pledge_needs_two_splits () =
  (* one split is TL003's business, not TL014's *)
  let one =
    spec_of_source
      {|principal c : consumer
principal p1 : producer
principal p2 : producer
trusted t1
trusted t2
deal a: c pays $10; p1 gives "d1"; via t1
deal b: c pays $20; p2 gives "d2"; via t2
split c : a.buyer|}
  in
  check_int "single split clean" 0
    (List.length (Conflict.over_pledged ~split_loc:no_loc2 one))

let test_deadline_sized_to_span_is_clean () =
  (* the same shape as the TL015 fixture but with a roomy deadline *)
  let spec =
    spec_of_source
      {|principal c : consumer
principal b : broker
principal p : producer
trusted t1
trusted t2
deal bp: b pays $8;  p gives "d"; via t2
deal cb: c pays $10; b gives "d"; via t1 within 40
priority b : cb.seller|}
  in
  match (Feasibility.analyze spec).Feasibility.sequence with
  | None -> Alcotest.fail "spec must be feasible"
  | Some seq ->
    check_int "within 40 is roomy enough" 0
      (List.length (Conflict.deadline_races ~deal_loc:no_loc seq))

(* --- the oracle: static bounds dominate the dynamic ledger ------------ *)

let battery spec =
  let defectable = Harness.defectable_principals spec in
  (None, Harness.honest_run ~mode:Harness.Lockstep spec)
  :: List.concat_map
       (fun q ->
         List.map
           (fun d ->
             ( Some (q, d),
               Harness.adversarial_run ~mode:Harness.Lockstep
                 ~defectors:[ (q, d) ] spec ))
           [ Harness.Silent; Harness.Partial 1; Harness.Partial 2 ])
       defectable

let test_oracle_static_dominates_dynamic () =
  let rng = Prng.create 5151L in
  let specs = Gen.random_transactions rng Gen.default_mix 200 in
  let analyzed = ref 0 and runs = ref 0 in
  List.iteri
    (fun i spec ->
      match (Feasibility.analyze spec).Feasibility.sequence with
      | None -> ()
      | Some seq ->
        incr analyzed;
        let a = Absint.of_sequence seq in
        let hi p =
          match
            List.find_opt
              (fun (iv : Absint.interval) -> Party.equal iv.Absint.i_party p)
              a.Absint.intervals
          with
          | Some iv -> iv.Absint.i_hi
          | None -> 0
        in
        List.iter
          (fun (defection, run) ->
            match run with
            | Error e -> Alcotest.failf "spec %d: run failed: %s" i e
            | Ok result ->
              incr runs;
              let defectors = Option.to_list (Option.map fst defection) in
              let x = E.of_result ~defectors spec result in
              List.iter
                (fun (l : E.party_ledger) ->
                  if
                    not
                      (List.exists (Party.equal l.E.party) defectors)
                  then
                    check
                      (Printf.sprintf
                         "spec %d: static hi(%s)=%d dominates dynamic peak %d"
                         i (Party.name l.E.party) (hi l.E.party)
                         l.E.peak_at_risk)
                      true
                      (hi l.E.party >= l.E.peak_at_risk))
                x.E.parties)
          (battery spec))
    specs;
  check "a healthy share of the corpus was analyzed" true (!analyzed >= 100);
  check "the battery actually ran" true (!runs >= 300)

let test_oracle_certified_never_bound_exceeded () =
  let rng = Prng.create 909L in
  let specs = Gen.random_transactions rng Gen.default_mix 200 in
  let certified = ref 0 in
  List.iteri
    (fun i spec ->
      let diags = Lint.check_spec spec in
      let conflicted =
        List.exists
          (fun d ->
            match d.Diagnostic.code with
            | Diagnostic.Double_spend | Diagnostic.Over_pledged_indemnity
            | Diagnostic.Deadline_race | Diagnostic.Unprovable_bound ->
              true
            | _ -> false)
          diags
      in
      if (not conflicted) && Feasibility.is_feasible spec then begin
        incr certified;
        List.iter
          (fun (defection, run) ->
            match run with
            | Error e -> Alcotest.failf "spec %d: run failed: %s" i e
            | Ok result ->
              let defectors = Option.to_list (Option.map fst defection) in
              let x = E.of_result ~defectors spec result in
              List.iter
                (fun (v : E.violation) ->
                  match v.E.v_kind with
                  | E.Bound_exceeded _ ->
                    Alcotest.failf
                      "spec %d: certified conflict-free, yet honest %s \
                       exceeded its bound"
                      i
                      (Party.name v.E.v_party)
                  | E.Unsettled _ ->
                    (* a defection legitimately leaves honest parties
                       unsettled; only the bound is certified *)
                    ())
                x.E.violations)
          (battery spec)
      end)
    specs;
  check "a healthy share of the corpus is certified" true (!certified >= 80)

let () =
  Alcotest.run "static_exposure"
    [
      ( "worked examples",
        [
          Alcotest.test_case "example1 proves the bound" `Quick test_example1_proved;
          Alcotest.test_case "infeasible specs are vacuous" `Quick test_infeasible_vacuous;
          Alcotest.test_case "stacked sales refute with a schedule" `Quick
            test_refutation_with_schedule;
          Alcotest.test_case "witness is an ascending subsequence" `Quick
            test_witness_is_a_subsequence;
        ] );
      ( "conflicts",
        [
          Alcotest.test_case "double spend detected" `Quick test_double_spend_detected;
          Alcotest.test_case "honest resale is clean" `Quick test_resale_is_not_double_spend;
          Alcotest.test_case "one split is not an over-pledge" `Quick
            test_over_pledge_needs_two_splits;
          Alcotest.test_case "roomy deadline is clean" `Quick
            test_deadline_sized_to_span_is_clean;
        ] );
      ( "oracle",
        [
          Alcotest.test_case "static bound dominates every dynamic peak (200 specs)"
            `Quick test_oracle_static_dominates_dynamic;
          Alcotest.test_case "certified specs never exceed the bound (200 specs)"
            `Quick test_oracle_certified_never_bound_exceeded;
        ] );
    ]
