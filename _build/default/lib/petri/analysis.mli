(** Net analyses: bounded reachability and Karp–Miller coverability.

    Reachability enumerates the exact state space breadth-first with a
    visited set — exponential in general, which is precisely the cost
    contrast §7.4 draws against the polynomial graph reduction. The
    Karp–Miller construction answers general coverability queries with
    ω-abstraction for unbounded places. *)

type stats = { explored : int; frontier_peak : int; hit_bound : bool }

type 'verdict result = { verdict : 'verdict; stats : stats }

val reachable :
  ?max_states:int ->
  Net.t ->
  Net.Marking.t ->
  goal:(Net.Marking.t -> bool) ->
  [ `Found of Net.transition list | `Exhausted | `Bound_hit ] result
(** Breadth-first search from the initial marking. [`Found trace]
    returns a firing sequence reaching a goal marking. [max_states]
    (default [1_000_000]) bounds the visited set; [`Bound_hit] means the
    search was cut off undecided. *)

val coverable :
  ?max_nodes:int ->
  Net.t ->
  Net.Marking.t ->
  target:Net.Marking.t ->
  [ `Coverable | `Not_coverable | `Bound_hit ] result
(** Karp–Miller tree construction: is some marking [>= target]
    reachable? ω-acceleration makes the answer exact for unbounded nets
    when [max_nodes] (default [200_000]) is not hit. *)

val state_space_size : ?max_states:int -> Net.t -> Net.Marking.t -> int option
(** Exact number of reachable markings, [None] if the bound is hit. *)
