(** One-call analysis: spec → sequencing graph → reduction → execution
    sequence, plus the indemnity rescue loop for infeasible bundles. *)

open Exchange

type analysis = {
  spec : Spec.t;
  outcome : Reduce.outcome;
  sequence : Execution.sequence option;  (** [Some] iff feasible *)
}

val analyze :
  ?shared:bool -> ?obs:Trust_obs.Obs.t -> ?parent:Trust_obs.Obs.handle -> Spec.t -> analysis
(** [shared] (default false) also enables {!Reduce.Rule3_shared}, the
    shared-agent extension. [obs]/[parent] attach the reducer's
    profiler span to a trace (see {!Reduce.run}); the default null sink
    records nothing. *)

val is_feasible : ?shared:bool -> Spec.t -> bool

val blocking_conjunctions : analysis -> Party.t list
(** Owners of conjunctions with edges remaining in the stuck graph —
    the candidates for indemnification or direct trust. Empty when
    feasible. *)

type rescue = {
  plans : Indemnity.plan list;  (** one per conjunction that was split *)
  analysis : analysis;  (** of the split spec; feasible on success *)
}

val rescue_with_indemnities : ?shared:bool -> Spec.t -> rescue option
(** Repeatedly: analyze; if stuck, greedily indemnify the blocking
    {e principal} conjunction whose split is cheapest, and retry.
    [None] when no further principal conjunction can be split and the
    spec is still infeasible. Feasible specs return a rescue with no
    plans. *)

val total_indemnity : rescue -> Asset.money

val pp_analysis : Format.formatter -> analysis -> unit
