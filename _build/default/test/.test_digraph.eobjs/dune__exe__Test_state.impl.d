test/test_state.ml: Action Alcotest Asset Exchange List Party State
