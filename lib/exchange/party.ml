type role = Consumer | Producer | Broker

type t = Principal of string * role | Trusted of string

let consumer name = Principal (name, Consumer)
let producer name = Principal (name, Producer)
let broker name = Principal (name, Broker)
let trusted name = Trusted name

let name = function Principal (n, _) -> n | Trusted n -> n
let is_principal = function Principal _ -> true | Trusted _ -> false
let is_trusted = function Trusted _ -> true | Principal _ -> false
let role = function Principal (_, r) -> Some r | Trusted _ -> None

let compare a b =
  if a == b then 0
  else
    match (a, b) with
    | Principal (na, ra), Principal (nb, rb) ->
      let c = String.compare na nb in
      if c <> 0 then c else Stdlib.compare ra rb
    | Trusted na, Trusted nb -> String.compare na nb
    | Principal _, Trusted _ -> -1
    | Trusted _, Principal _ -> 1

let equal a b = a == b || compare a b = 0

let pp_role ppf r =
  Format.pp_print_string ppf
    (match r with Consumer -> "consumer" | Producer -> "producer" | Broker -> "broker")

let pp ppf = function
  | Principal (n, r) -> Format.fprintf ppf "%s:%a" n pp_role r
  | Trusted n -> Format.fprintf ppf "%s:trusted" n

let to_string t = Format.asprintf "%a" pp t

module Ord = struct
  type nonrec t = t

  let compare = compare
end

module Set = Set.Make (Ord)
module Map = Map.Make (Ord)
