test/test_outcomes.ml: Action Alcotest Asset Exchange List Outcomes Party QCheck2 QCheck_alcotest Spec State Trust_core Workload
