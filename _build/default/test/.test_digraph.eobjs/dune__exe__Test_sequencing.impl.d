test/test_sequencing.ml: Alcotest Array Exchange Int64 List Option Party QCheck2 QCheck_alcotest Spec String Trust_core Workload
