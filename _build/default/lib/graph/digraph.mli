(** Mutable directed graphs over integer node identifiers.

    Nodes are dense non-negative integers allocated by {!add_node}. Edges
    are unlabelled ordered pairs; parallel edges are collapsed. The
    structure is deliberately small and imperative: the sequencing-graph
    reducer removes edges destructively while walking a worklist, and the
    workload generators build graphs with hundreds of thousands of edges. *)

type t

(** {1 Construction} *)

val create : ?initial_capacity:int -> unit -> t
(** [create ()] is an empty graph. *)

val copy : t -> t
(** [copy g] is an independent deep copy of [g]. *)

val add_node : t -> int
(** [add_node g] allocates a fresh node and returns its identifier.
    Identifiers are consecutive integers starting at [0]. *)

val add_nodes : t -> int -> int list
(** [add_nodes g n] allocates [n] fresh nodes, returned in order. *)

val add_edge : t -> int -> int -> unit
(** [add_edge g u v] adds edge [u -> v]. Adding an existing edge is a
    no-op. @raise Invalid_argument if [u] or [v] is not a node of [g]. *)

val remove_edge : t -> int -> int -> unit
(** [remove_edge g u v] removes edge [u -> v] if present. *)

(** {1 Queries} *)

val node_count : t -> int
val edge_count : t -> int

val mem_node : t -> int -> bool
val mem_edge : t -> int -> int -> bool

val succ : t -> int -> int list
(** Successors of a node, in insertion order. *)

val pred : t -> int -> int list
(** Predecessors of a node, in insertion order. *)

val out_degree : t -> int -> int
val in_degree : t -> int -> int

val degree : t -> int -> int
(** Total degree, counting each incident edge once per direction. *)

val nodes : t -> int list
val edges : t -> (int * int) list

val fold_nodes : (int -> 'a -> 'a) -> t -> 'a -> 'a
val fold_edges : (int -> int -> 'a -> 'a) -> t -> 'a -> 'a
val iter_nodes : (int -> unit) -> t -> unit
val iter_edges : (int -> int -> unit) -> t -> unit

(** {1 Algorithms} *)

val topological_sort : t -> int list option
(** Kahn's algorithm. [None] when the graph has a directed cycle. *)

val has_cycle : t -> bool

val reachable : t -> int -> (int, unit) Hashtbl.t
(** Set of nodes reachable from the given node (inclusive), as a table. *)

val is_reachable : t -> int -> int -> bool

val scc : t -> int list list
(** Tarjan's strongly connected components, in reverse topological
    order of the condensation. *)

val undirected_components : t -> int list list
(** Connected components, ignoring edge direction. *)

val two_colouring : t -> (int -> int) option
(** Bipartite 2-colouring of the undirected view. [Some colour] maps each
    node to [0] or [1] such that adjacent nodes differ; [None] if an
    odd undirected cycle exists. Isolated nodes are coloured [0]. *)

val pp : Format.formatter -> t -> unit
