(** Actions of a distributed commerce transaction (paper §2.2, §2.5).

    The only actions that matter to the formalism are transfers between
    parties: [give]s of goods, [pay]ments, their mathematical inverses
    (compensations that return an earlier transfer to its sender) and the
    [notify] action available to trusted components. *)

type transfer = {
  source : Party.t;  (** the party the asset moves away from *)
  target : Party.t;  (** the party the asset moves to *)
  asset : Asset.t;
}
(** A directed movement of one asset. [give_{a->b}(d)] and
    [pay_{b->a}(m)] are both transfers; they differ only in the asset. *)

type t =
  | Do of transfer  (** the transfer happens *)
  | Undo of transfer
      (** [Undo tr] compensates an earlier [Do tr]: the asset returns
          from [tr.target] back to [tr.source] (give⁻¹ / pay⁻¹) *)
  | Notify of { agent : Party.t; informed : Party.t }
      (** a trusted component informs a principal that the other
          participants have fulfilled their parts (§2.5) *)

val give : Party.t -> Party.t -> string -> t
(** [give a b d] is [give_{a->b}(d)]. *)

val pay : Party.t -> Party.t -> Asset.money -> t
(** [pay b a m] is [pay_{b->a}(m)]: [b] pays [a]. *)

val transfer : Party.t -> Party.t -> Asset.t -> t
val undo : t -> t
(** Inverse of a [Do]. @raise Invalid_argument on [Undo] or [Notify]. *)

val notify : agent:Party.t -> informed:Party.t -> t

val performer : t -> Party.t
(** The party that executes the action: the source of a [Do], the
    current holder (original target) for an [Undo], the agent of a
    [Notify]. Used by the acceptability test, which constrains the
    actions {e performed by} a given party (§2.3). *)

val beneficiary : t -> Party.t
(** The party that receives something: target of a [Do], source of an
    [Undo] (it gets its asset back), the informed party of a [Notify]. *)

val is_message : t -> bool
(** Every action counts as one network message in the §8 cost model;
    this is [true] for all constructors and exists for clarity of the
    cost-model code. *)

val equal : t -> t -> bool
val compare : t -> t -> int
val pp : Format.formatter -> t -> unit
val to_string : t -> string

(** {1 Patterns}

    Acceptable states in the paper quantify over parties ("with X
    ranging over [{p, t1, b, t2}]", §3.1): the customer accepts the
    document from anyone so long as he paid. Patterns make that
    expressible without enumerating every instantiation. *)

module Pattern : sig
  type party_pat =
    | Exactly of Party.t
    | Any_party
    | Any_trusted
    | Any_principal

  type asset_pat =
    | Exact_asset of Asset.t
    | Any_document
    | Money_at_least of Asset.money
    | Any_asset

  type action = t

  type t =
    | P_do of party_pat * party_pat * asset_pat
    | P_undo of party_pat * party_pat * asset_pat
    | P_notify of party_pat * party_pat

  val of_action : action -> t
  (** The pattern matching exactly that action. *)

  val matches : t -> action -> bool
  val party_matches : party_pat -> Party.t -> bool
  val pp : Format.formatter -> t -> unit
end
