type t = { line : int; col : int }

let start = { line = 1; col = 1 }

let advance pos = function
  | '\n' -> { line = pos.line + 1; col = 1 }
  | _ -> { pos with col = pos.col + 1 }

let compare a b =
  match Int.compare a.line b.line with 0 -> Int.compare a.col b.col | c -> c

let pp ppf pos = Format.fprintf ppf "line %d, column %d" pos.line pos.col

let pp_located ?file ppf pos =
  match file with
  | Some file -> Format.fprintf ppf "%s:%d:%d" file pos.line pos.col
  | None -> Format.fprintf ppf "%d:%d" pos.line pos.col

type 'a located = { value : 'a; loc : t }

let at loc value = { value; loc }
