test/test_sim.ml: Action Alcotest Asset Exchange Int64 List Party QCheck2 QCheck_alcotest State Trust_core Trust_sim Workload
