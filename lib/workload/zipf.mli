(** Exact Zipf(s) sampling over ranks [0, n).

    Rank [k] (0-based) is drawn with probability proportional to
    [1 / (k+1)^s]: rank 0 is the heaviest hitter, the tail thins
    polynomially. Sampling is exact — the cumulative distribution is
    precomputed at {!create} and each draw is one uniform from the
    {!Prng} stream plus a binary search — so a fixed seed reproduces
    the same rank sequence on every run, which the million-principal
    load generator ({!Universe}) depends on. *)

type t

val create : n:int -> s:float -> t
(** [create ~n ~s] builds the sampler for [n] ranks with exponent [s].
    [s = 0.] is the uniform distribution; larger [s] concentrates mass
    on low ranks. Allocates O(n) floats.
    @raise Invalid_argument when [n <= 0] or [s < 0.]. *)

val size : t -> int
(** The [n] given to {!create}. *)

val exponent : t -> float

val sample : t -> Prng.t -> int
(** One rank in [\[0, n)], advancing the generator by one draw. *)

val pmf : t -> int -> float
(** The exact probability of rank [k] (for tests).
    @raise Invalid_argument when [k] is out of range. *)
