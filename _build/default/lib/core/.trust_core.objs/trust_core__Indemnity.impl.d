lib/core/indemnity.ml: Action Asset Exchange Execution Format Int List Party Reduce Sequencing Spec
