module Prng = Workload.Prng

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let test_deterministic () =
  let a = Prng.create 7L and b = Prng.create 7L in
  let xs = List.init 20 (fun _ -> Prng.next_int64 a) in
  let ys = List.init 20 (fun _ -> Prng.next_int64 b) in
  check "same seed, same stream" true (xs = ys)

let test_seeds_differ () =
  let a = Prng.create 1L and b = Prng.create 2L in
  let xs = List.init 10 (fun _ -> Prng.next_int64 a) in
  let ys = List.init 10 (fun _ -> Prng.next_int64 b) in
  check "different seeds diverge" true (xs <> ys)

let test_copy () =
  let a = Prng.create 99L in
  let _ = Prng.next_int64 a in
  let b = Prng.copy a in
  check "copy continues identically" true (Prng.next_int64 a = Prng.next_int64 b)

let test_int_bounds () =
  let rng = Prng.create 5L in
  for _ = 1 to 1000 do
    let v = Prng.int rng 17 in
    if v < 0 || v >= 17 then Alcotest.failf "out of bounds: %d" v
  done

let test_int_bound_one () =
  let rng = Prng.create 5L in
  check_int "bound 1 is constant 0" 0 (Prng.int rng 1)

let test_int_invalid () =
  let rng = Prng.create 5L in
  Alcotest.check_raises "zero bound" (Invalid_argument "Prng.int: bound must be positive")
    (fun () -> ignore (Prng.int rng 0))

let test_float_range () =
  let rng = Prng.create 3L in
  for _ = 1 to 1000 do
    let f = Prng.float rng in
    if f < 0.0 || f >= 1.0 then Alcotest.failf "float out of range: %f" f
  done

let test_int_covers_values () =
  let rng = Prng.create 11L in
  let seen = Array.make 4 false in
  for _ = 1 to 200 do
    seen.(Prng.int rng 4) <- true
  done;
  check "all residues hit" true (Array.for_all Fun.id seen)

let test_pick () =
  let rng = Prng.create 2L in
  let items = [ "a"; "b"; "c" ] in
  for _ = 1 to 50 do
    let p = Prng.pick rng items in
    check "picked from list" true (List.mem p items)
  done;
  Alcotest.check_raises "empty pick" (Invalid_argument "Prng.pick: empty list") (fun () ->
      ignore (Prng.pick rng []))

let test_shuffle_permutation () =
  let rng = Prng.create 21L in
  let items = List.init 30 Fun.id in
  let shuffled = Prng.shuffle rng items in
  check "same multiset" true (List.sort compare shuffled = items)

let test_split_independent () =
  let a = Prng.create 4L in
  let b = Prng.split a in
  let xs = List.init 5 (fun _ -> Prng.next_int64 a) in
  let ys = List.init 5 (fun _ -> Prng.next_int64 b) in
  check "split streams differ" true (xs <> ys)

let prop_int_in_range =
  QCheck2.Test.make ~name:"int always lands in [0, bound)" ~count:500
    QCheck2.Gen.(pair (int_range 1 1_000_000) int)
    (fun (bound, seed) ->
      let rng = Prng.create (Int64.of_int seed) in
      let v = Prng.int rng bound in
      v >= 0 && v < bound)

let () =
  Alcotest.run "prng"
    [
      ( "splitmix64",
        [
          Alcotest.test_case "deterministic stream" `Quick test_deterministic;
          Alcotest.test_case "seeds diverge" `Quick test_seeds_differ;
          Alcotest.test_case "copy" `Quick test_copy;
          Alcotest.test_case "int bounds" `Quick test_int_bounds;
          Alcotest.test_case "int bound one" `Quick test_int_bound_one;
          Alcotest.test_case "int invalid bound" `Quick test_int_invalid;
          Alcotest.test_case "float in [0,1)" `Quick test_float_range;
          Alcotest.test_case "int covers residues" `Quick test_int_covers_values;
          Alcotest.test_case "pick" `Quick test_pick;
          Alcotest.test_case "shuffle is a permutation" `Quick test_shuffle_permutation;
          Alcotest.test_case "split independence" `Quick test_split_independent;
        ] );
      ("properties", [ QCheck_alcotest.to_alcotest prop_int_in_range ]);
    ]
