examples/marketplace.ml: Array Int64 List Printf Report Sys Trust_core Trust_sim Workload
