lib/petri/encode.mli: Analysis Exchange Net Spec Trust_core
