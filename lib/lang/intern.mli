(** Hash-consing of front-end values (parties and assets).

    The elaborator routes its constructors through these tables so that
    repeated elaborations of equal source return physically equal
    values, letting the [==] fast paths in [Party.compare],
    [Asset.compare] and [Action.compare] short-circuit. Tables are
    process-global, thread-safe, and bounded ([capacity] entries); past
    the bound values are returned un-interned — interning is a sharing
    hint, never a correctness requirement. *)

open Exchange

val capacity : int

val party : Party.t -> Party.t
val asset : Asset.t -> Asset.t

val consumer : string -> Party.t
val producer : string -> Party.t
val broker : string -> Party.t
val trusted : string -> Party.t
val money : Asset.money -> Asset.t
val document : string -> Asset.t
