open Exchange

type tally = { transfers : int; notifications : int; compensations : int; total : int }

let tally_actions actions =
  let count t action =
    match action with
    | Action.Do _ -> { t with transfers = t.transfers + 1; total = t.total + 1 }
    | Action.Undo _ -> { t with compensations = t.compensations + 1; total = t.total + 1 }
    | Action.Notify _ -> { t with notifications = t.notifications + 1; total = t.total + 1 }
  in
  List.fold_left count { transfers = 0; notifications = 0; compensations = 0; total = 0 } actions

let tally_sequence sequence = tally_actions (Execution.actions sequence)

(* Mutual trust lets either side play the intermediary; the buyer-side
   persona is the direction that also unblocks broker chains (§4.2.3
   variant 1: the seller ships on trust, the buyer pays directly). *)
let with_all_direct_trust spec =
  List.fold_left
    (fun spec d -> Spec.with_persona ~trusted:d.Spec.via ~principal:d.Spec.left spec)
    spec spec.Spec.deals

let with_universal_intermediary spec =
  let star = Party.trusted "t*" in
  let reroute d = { d with Spec.via = star } in
  (* Personas make no sense for the universal agent; priorities survive
     as constraints the universal agent checks internally, so they are
     dropped from the graph-level spec. *)
  Spec.make_exn (List.map reroute spec.Spec.deals)

let universal_feasible _spec = true

let universal_tally spec =
  let commitments = Spec.commitments spec in
  (* one message in per commitment, one out per expected delivery *)
  let transfers = 2 * List.length commitments in
  { transfers; notifications = 0; compensations = 0; total = transfers }

let pp_tally ppf t =
  Format.fprintf ppf "%d messages (%d transfers, %d notifies, %d compensations)" t.total
    t.transfers t.notifications t.compensations
