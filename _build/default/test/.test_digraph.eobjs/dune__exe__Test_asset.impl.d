test/test_asset.ml: Alcotest Asset Char Exchange Format QCheck2 QCheck_alcotest String
