lib/exchange/interaction.mli: Format Party Spec Trust_graph
