(** Per-party protocol synthesis.

    A protocol is "a set of instructions for each participant that
    governs its actions" (§2.3). The synthesized execution sequence is a
    total order; a distributed participant cannot observe the whole
    order, only events local to it — assets and notifications arriving.
    Each party's script therefore triggers an action on the latest
    preceding event of the global sequence that the party observes
    (or immediately, when nothing observable precedes it).

    The simulator runs these scripts; an engine-level guard additionally
    delays any send whose asset has not arrived yet, which keeps scripts
    safe when unrelated actions commute. *)

open Exchange

type condition =
  | Now
  | Observed of Action.t
      (** fire once this action has been observed locally: the party is
          the action's target or the informed principal of a notify *)

type scripted_step = { condition : condition; action : Action.t }

type t = {
  spec : Spec.t;
  roles : (Party.t * scripted_step list) list;
      (** every party that acts, with its steps in local order *)
}

val synthesize : Execution.sequence -> t

val synthesize_lockstep : ?prologue:Action.t list -> Execution.sequence -> t
(** The §5 semantics taken literally: the execution sequence is a total
    order and every action waits for the delivery of its global
    predecessor (the first fires immediately). Requires a runtime where
    deliveries are observable by everyone (a bulletin-board / lockstep
    round model — the paper defers a fully distributed protocol to
    future work, §9). [prologue] actions (indemnity deposits) are
    chained in front of the sequence. *)

val script_of : t -> Party.t -> scripted_step list
(** Empty for parties with no actions. *)

val equal_condition : condition -> condition -> bool
val equal_step : scripted_step -> scripted_step -> bool

val equal_roles : t -> t -> bool
(** Same parties with the same scripts in the same order — the whole
    observable content of a protocol (the [spec] field is not compared).
    Used by the serve-layer protocol cache to assert that a cache hit is
    indistinguishable from fresh synthesis. *)

val observes : Party.t -> Action.t -> bool
(** Does this party locally observe this action? True for the receiving
    target of a transfer (or the refunded source of an [Undo]) and the
    informed party of a notification — and for the performer itself. *)

val pp : Format.formatter -> t -> unit
