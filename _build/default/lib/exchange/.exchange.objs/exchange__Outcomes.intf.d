lib/exchange/outcomes.mli: Format Party Spec State
