type t = { parent : int array; rank : int array }

let create n = { parent = Array.init n (fun i -> i); rank = Array.make n 0 }

let rec find t x =
  let p = t.parent.(x) in
  if p = x then x
  else begin
    let root = find t p in
    t.parent.(x) <- root;
    root
  end

let union t x y =
  let rx = find t x and ry = find t y in
  if rx <> ry then
    if t.rank.(rx) < t.rank.(ry) then t.parent.(rx) <- ry
    else if t.rank.(rx) > t.rank.(ry) then t.parent.(ry) <- rx
    else begin
      t.parent.(ry) <- rx;
      t.rank.(rx) <- t.rank.(rx) + 1
    end

let equivalent t x y = find t x = find t y

let count_sets t =
  let n = Array.length t.parent in
  let count = ref 0 in
  for i = 0 to n - 1 do
    if find t i = i then incr count
  done;
  !count

let set_of t x =
  let root = find t x in
  let n = Array.length t.parent in
  let rec collect i acc =
    if i < 0 then acc else collect (i - 1) (if find t i = root then i :: acc else acc)
  in
  collect (n - 1) []
