(* Encoding of sequencing graphs into nets. *)
module Sequencing = Trust_core.Sequencing

type t = {
  net : Net.t;
  initial : Net.Marking.t;
  goal : Net.Marking.t;
  edge_places : ((int * int) * (Net.place * Net.place)) list;
}

let of_sequencing g =
  let net = Net.create () in
  let edges =
    List.concat_map
      (fun c ->
        List.map
          (fun (jid, colour) -> (c.Sequencing.cid, jid, colour))
          (Sequencing.edges_of_commitment g c.Sequencing.cid))
      (Array.to_list (Sequencing.commitments g))
  in
  let edge_places =
    List.map
      (fun (cid, jid, _) ->
        let on = Net.add_place ~name:(Printf.sprintf "on_c%d_j%d" cid jid) net in
        let off = Net.add_place ~name:(Printf.sprintf "off_c%d_j%d" cid jid) net in
        ((cid, jid), (on, off)))
      edges
  in
  let places_of cid jid = List.assoc (cid, jid) edge_places in
  let off_of cid jid = snd (places_of cid jid) in
  let read places = List.map (fun p -> (p, 1)) places in
  (* Rule #1 on edge (c, j): the commitment's other edge (if any) must be
     off; every red sibling must be off unless the persona clause holds. *)
  List.iter
    (fun (cid, jid, _) ->
      let on, off = places_of cid jid in
      let other_edges =
        List.filter_map
          (fun (jid', _) -> if jid' <> jid then Some (off_of cid jid') else None)
          (Sequencing.edges_of_commitment g cid)
      in
      let red_siblings =
        if Sequencing.plays_own_agent g cid then []
        else
          List.filter_map
            (fun (cid', colour) ->
              if cid' <> cid && colour = Sequencing.Red then Some (off_of cid' jid) else None)
            (Sequencing.edges_of_conjunction g jid)
      in
      let side = read (other_edges @ red_siblings) in
      ignore
        (Net.add_transition
           ~name:(Printf.sprintf "r1_c%d_j%d" cid jid)
           net
           ~pre:((on, 1) :: side)
           ~post:((off, 1) :: side));
      (* Rule #2 on the same edge: every sibling edge of j must be off. *)
      let conj_siblings =
        List.filter_map
          (fun (cid', _) -> if cid' <> cid then Some (off_of cid' jid) else None)
          (Sequencing.edges_of_conjunction g jid)
      in
      let side2 = read conj_siblings in
      ignore
        (Net.add_transition
           ~name:(Printf.sprintf "r2_c%d_j%d" cid jid)
           net
           ~pre:((on, 1) :: side2)
           ~post:((off, 1) :: side2)))
    edges;
  let initial = Net.Marking.initial net (List.map (fun (_, (on, _)) -> (on, 1)) edge_places) in
  let goal = Net.Marking.initial net (List.map (fun (_, (_, off)) -> (off, 1)) edge_places) in
  { net; initial; goal; edge_places }

let of_spec spec = of_sequencing (Sequencing.build spec)

let feasible ?max_states t =
  let r =
    Analysis.reachable ?max_states t.net t.initial ~goal:(fun m -> Net.Marking.covers m t.goal)
  in
  let verdict =
    match r.Analysis.verdict with
    | `Found _ -> `Feasible
    | `Exhausted -> `Infeasible
    | `Bound_hit -> `Unknown
  in
  (verdict, r.Analysis.stats)

let reduction_orders ?max_states t = Analysis.state_space_size ?max_states t.net t.initial
