examples/broker_chain.mli:
