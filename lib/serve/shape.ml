open Exchange

let cacheable spec = Party.Map.is_empty spec.Spec.overrides

(* Every variable-length field is length-prefixed so the encoding is
   injective: no choice of party or deal names can make two different
   specs collide. *)
let enc_string buf s =
  Buffer.add_string buf (string_of_int (String.length s));
  Buffer.add_char buf ':';
  Buffer.add_string buf s

let enc_party buf p =
  (match Party.role p with
  | Some Party.Consumer -> Buffer.add_char buf 'C'
  | Some Party.Producer -> Buffer.add_char buf 'P'
  | Some Party.Broker -> Buffer.add_char buf 'B'
  | None -> Buffer.add_char buf 'T');
  enc_string buf (Party.name p)

let enc_asset buf = function
  | Asset.Money m ->
    Buffer.add_char buf 'm';
    Buffer.add_string buf (string_of_int m)
  | Asset.Document d ->
    Buffer.add_char buf 'd';
    enc_string buf d

let enc_ref buf { Spec.deal; side } =
  enc_string buf deal;
  Buffer.add_char buf (match side with Spec.Left -> 'L' | Spec.Right -> 'R')

let encode spec =
  let buf = Buffer.create 256 in
  Buffer.add_string buf "deals[";
  List.iter
    (fun d ->
      Buffer.add_char buf '(';
      enc_string buf d.Spec.id;
      enc_party buf d.Spec.left;
      enc_party buf d.Spec.right;
      enc_party buf d.Spec.via;
      enc_asset buf d.Spec.left_sends;
      enc_asset buf d.Spec.right_sends;
      (match d.Spec.deadline with
      | None -> Buffer.add_char buf '-'
      | Some n -> Buffer.add_string buf (string_of_int n));
      Buffer.add_char buf ')')
    spec.Spec.deals;
  Buffer.add_string buf "]personas[";
  (* Map bindings come out in key order, so insertion order cannot leak
     into the encoding. *)
  List.iter
    (fun (trusted, principal) ->
      Buffer.add_char buf '(';
      enc_party buf trusted;
      enc_party buf principal;
      Buffer.add_char buf ')')
    (Party.Map.bindings spec.Spec.personas);
  Buffer.add_string buf "]prios[";
  List.iter
    (fun (owner, cref) ->
      Buffer.add_char buf '(';
      enc_party buf owner;
      enc_ref buf cref;
      Buffer.add_char buf ')')
    spec.Spec.priorities;
  Buffer.add_string buf "]splits[";
  List.iter
    (fun (owner, cref) ->
      Buffer.add_char buf '(';
      enc_party buf owner;
      enc_ref buf cref;
      Buffer.add_char buf ')')
    spec.Spec.splits;
  Buffer.add_string buf "]ovr[";
  List.iter
    (fun (party, _) ->
      Buffer.add_char buf '(';
      enc_party buf party;
      Buffer.add_char buf ')')
    (Party.Map.bindings spec.Spec.overrides);
  Buffer.add_string buf "]";
  Buffer.contents buf

let fnv1a s =
  let prime = 0x100000001B3L in
  let h = ref 0xCBF29CE484222325L in
  String.iter
    (fun c ->
      h := Int64.logxor !h (Int64.of_int (Char.code c));
      h := Int64.mul !h prime)
    s;
  !h

let hash spec = fnv1a (encode spec)
let hash_hex spec = Printf.sprintf "%016Lx" (hash spec)

let mix64 z =
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let uniform h = Int64.to_float (Int64.shift_right_logical h 11) /. 9007199254740992.0
