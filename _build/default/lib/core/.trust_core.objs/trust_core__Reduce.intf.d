lib/core/reduce.mli: Format Sequencing
