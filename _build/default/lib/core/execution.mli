(** Execution-sequence recovery (paper §5).

    A feasible reduction yields a total order of the transfers that
    protects every party: pairwise exchanges run in the order their
    commitment nodes disconnected, except that commitments tied to their
    conjunction by a red edge are deferred until all black-edge
    commitments have executed; each trusted conjunction disconnect emits
    a notification.

    Each commitment executes as "principal sends its item to the party
    playing the deal's trusted role". Once an intermediary holds both
    sides of a deal it forwards them — documents before payments, which
    reproduces the paper's 10-step sequence for Example #1. Transfers
    whose source and target coincide (a principal playing its own
    trusted role, §4.2.3) move nothing and emit no message. *)

open Exchange

type origin =
  | Commit of Spec.commitment_ref  (** a principal funds its side *)
  | Forward of string  (** the deal's intermediary completes a side *)
  | Notification of Party.t  (** the conjunction owner that disconnected *)

type step = { index : int; action : Action.t; origin : origin }

type sequence = { spec : Spec.t; steps : step list }

val of_outcome : Reduce.outcome -> (sequence, string) result
(** [Error] when the outcome is not feasible. *)

val actions : sequence -> Action.t list
val final_state : sequence -> State.t
(** The state reached when every step executes. *)

val message_count : sequence -> int
(** Number of steps — every action is one network message (§8). *)

val check_physical : sequence -> (unit, string) result
(** §2.4 constraint: no party sends an asset it does not hold. Initial
    endowments: a principal holds the money it must send and any
    document it sends but does not acquire through another of its deals
    (a reselling broker starts without the document); intermediaries
    start empty. *)

val all_parties_acceptable : sequence -> (Party.t * bool) list
(** Evaluate {!Exchange.Outcomes.acceptable} for every party against the
    final state. A correct execution sequence yields [true] throughout —
    and indeed reaches every party's preferred outcome. *)

val pp_step : Format.formatter -> step -> unit
val pp : Format.formatter -> sequence -> unit
