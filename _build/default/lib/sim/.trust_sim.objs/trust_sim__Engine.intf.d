lib/sim/engine.mli: Action Asset Behavior Exchange Format Party Spec State Trust_core
