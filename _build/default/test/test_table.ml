module Table = Report.Table

let check = Alcotest.(check bool)
let check_str = Alcotest.(check string)

let contains haystack needle =
  let lh = String.length haystack and ln = String.length needle in
  let rec scan i = i + ln <= lh && (String.sub haystack i ln = needle || scan (i + 1)) in
  ln = 0 || scan 0

let test_render_basic () =
  let out = Table.render ~header:[ "name"; "value" ] [ [ "alpha"; "1" ]; [ "b"; "22" ] ] in
  check "header present" true (contains out "name");
  check "rule present" true (contains out "|------");
  (* numeric cells right-aligned: "22" should be preceded by spaces *)
  check "numeric right aligned" true (contains out "|    22 |")

let test_render_pads_short_rows () =
  let out = Table.render ~header:[ "a"; "b"; "c" ] [ [ "x" ] ] in
  check "padded" true (contains out "| x");
  (* all rows have the same width *)
  let lines = List.filter (fun l -> l <> "") (String.split_on_char '\n' out) in
  let widths = List.map String.length lines in
  check "uniform width" true (List.for_all (( = ) (List.hd widths)) widths)

let test_text_left_aligned () =
  let out = Table.render ~header:[ "k" ] [ [ "ab" ]; [ "longer" ] ] in
  check "left aligned text" true (contains out "| ab     |")

let test_kv () =
  let out = Table.kv [ ("key", "v"); ("longer key", "w") ] in
  check "aligned colons" true (contains out "key        : v");
  check "second" true (contains out "longer key : w")

let test_money () =
  check_str "whole" "$70" (Table.money 7000);
  check_str "cents" "$1.50" (Table.money 150);
  check_str "zero" "$0" (Table.money 0)

let () =
  Alcotest.run "table"
    [
      ( "render",
        [
          Alcotest.test_case "basic table" `Quick test_render_basic;
          Alcotest.test_case "short rows padded" `Quick test_render_pads_short_rows;
          Alcotest.test_case "text left aligned" `Quick test_text_left_aligned;
          Alcotest.test_case "kv block" `Quick test_kv;
          Alcotest.test_case "money" `Quick test_money;
        ] );
    ]
