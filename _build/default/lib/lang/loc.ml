type t = { line : int; col : int }

let start = { line = 1; col = 1 }

let advance pos = function
  | '\n' -> { line = pos.line + 1; col = 1 }
  | _ -> { pos with col = pos.col + 1 }

let pp ppf pos = Format.fprintf ppf "line %d, column %d" pos.line pos.col

type 'a located = { value : 'a; loc : t }

let at loc value = { value; loc }
