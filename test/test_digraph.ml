(* Unit and property tests for the generic directed-graph substrate. *)

module Digraph = Trust_graph.Digraph

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let path n =
  let g = Digraph.create () in
  let nodes = Digraph.add_nodes g n in
  List.iteri
    (fun i u -> if i + 1 < n then Digraph.add_edge g u (List.nth nodes (i + 1)))
    nodes;
  g

let cycle n =
  let g = path n in
  Digraph.add_edge g (n - 1) 0;
  g

let test_empty () =
  let g = Digraph.create () in
  check_int "no nodes" 0 (Digraph.node_count g);
  check_int "no edges" 0 (Digraph.edge_count g);
  Alcotest.(check (list (pair int int))) "edges empty" [] (Digraph.edges g)

let test_add_node_ids () =
  let g = Digraph.create () in
  check_int "first id" 0 (Digraph.add_node g);
  check_int "second id" 1 (Digraph.add_node g);
  check_int "third id" 2 (Digraph.add_node g);
  check "mem 1" true (Digraph.mem_node g 1);
  check "not mem 3" false (Digraph.mem_node g 3);
  check "not mem -1" false (Digraph.mem_node g (-1))

let test_add_edge_dedup () =
  let g = path 2 in
  Digraph.add_edge g 0 1;
  Digraph.add_edge g 0 1;
  check_int "parallel edges collapse" 1 (Digraph.edge_count g)

let test_add_edge_bogus () =
  let g = path 2 in
  Alcotest.check_raises "unknown node" (Invalid_argument "Digraph: node 5 not in graph of size 2")
    (fun () -> Digraph.add_edge g 0 5)

let test_remove_edge () =
  let g = path 3 in
  Digraph.remove_edge g 0 1;
  check "gone" false (Digraph.mem_edge g 0 1);
  check_int "one left" 1 (Digraph.edge_count g);
  (* removing twice is a no-op *)
  Digraph.remove_edge g 0 1;
  check_int "still one" 1 (Digraph.edge_count g)

let test_degrees () =
  let g = Digraph.create () in
  let _ = Digraph.add_nodes g 4 in
  Digraph.add_edge g 0 1;
  Digraph.add_edge g 0 2;
  Digraph.add_edge g 3 0;
  check_int "out" 2 (Digraph.out_degree g 0);
  check_int "in" 1 (Digraph.in_degree g 0);
  check_int "total" 3 (Digraph.degree g 0);
  Alcotest.(check (list int)) "succ order" [ 1; 2 ] (Digraph.succ g 0);
  Alcotest.(check (list int)) "pred" [ 3 ] (Digraph.pred g 0)

let test_copy_independent () =
  let g = path 3 in
  let g' = Digraph.copy g in
  Digraph.remove_edge g 0 1;
  check "copy keeps edge" true (Digraph.mem_edge g' 0 1);
  check "original lost it" false (Digraph.mem_edge g 0 1)

let test_topo_path () =
  match Digraph.topological_sort (path 5) with
  | None -> Alcotest.fail "path must be acyclic"
  | Some order -> Alcotest.(check (list int)) "in order" [ 0; 1; 2; 3; 4 ] order

let test_topo_cycle () =
  check "cycle has no topo order" true (Digraph.topological_sort (cycle 3) = None);
  check "has_cycle" true (Digraph.has_cycle (cycle 3));
  check "path has no cycle" false (Digraph.has_cycle (path 4))

let test_reachable () =
  let g = path 4 in
  check "0 reaches 3" true (Digraph.is_reachable g 0 3);
  check "3 does not reach 0" false (Digraph.is_reachable g 3 0);
  check "self reachable" true (Digraph.is_reachable g 2 2)

let test_scc_cycle () =
  let components = Digraph.scc (cycle 4) in
  check_int "one component" 1 (List.length components);
  Alcotest.(check (list int)) "all nodes" [ 0; 1; 2; 3 ]
    (List.sort compare (List.concat components))

let test_scc_dag () =
  let components = Digraph.scc (path 4) in
  check_int "four singletons" 4 (List.length components);
  List.iter (fun c -> check_int "singleton" 1 (List.length c)) components

let test_scc_two_cycles () =
  let g = Digraph.create () in
  let _ = Digraph.add_nodes g 5 in
  (* 0 <-> 1, 2 <-> 3 <-> 4, bridge 1 -> 2 *)
  Digraph.add_edge g 0 1;
  Digraph.add_edge g 1 0;
  Digraph.add_edge g 2 3;
  Digraph.add_edge g 3 2;
  Digraph.add_edge g 3 4;
  Digraph.add_edge g 4 3;
  Digraph.add_edge g 1 2;
  let components = List.map (List.sort compare) (Digraph.scc g) in
  let sorted = List.sort compare components in
  Alcotest.(check (list (list int))) "two components" [ [ 0; 1 ]; [ 2; 3; 4 ] ] sorted

let test_components () =
  let g = Digraph.create () in
  let _ = Digraph.add_nodes g 5 in
  Digraph.add_edge g 0 1;
  Digraph.add_edge g 3 2;
  let comps = List.map (List.sort compare) (Digraph.undirected_components g) in
  Alcotest.(check (list (list int))) "three components" [ [ 0; 1 ]; [ 2; 3 ]; [ 4 ] ]
    (List.sort compare comps)

let test_two_colouring_even () =
  match Digraph.two_colouring (cycle 4) with
  | None -> Alcotest.fail "even cycle is bipartite"
  | Some colour ->
    check "adjacent differ" true (colour 0 <> colour 1 && colour 1 <> colour 2)

let test_two_colouring_odd () =
  check "odd cycle not bipartite" true (Digraph.two_colouring (cycle 3) = None)

let test_dense_construction () =
  (* A complete graph on n nodes: with the old append-and-scan adjacency
     this was O(E * deg); the edge-table representation keeps it O(E).
     The size is big enough that a quadratic regression times out the
     suite rather than passing slowly. *)
  let n = 512 in
  let g = Digraph.create () in
  let _ = Digraph.add_nodes g n in
  for u = 0 to n - 1 do
    for v = 0 to n - 1 do
      if u <> v then Digraph.add_edge g u v
    done
  done;
  check_int "complete graph edge count" (n * (n - 1)) (Digraph.edge_count g);
  (* insertion order must survive the cons'd representation *)
  Alcotest.(check (list int)) "succ in insertion order"
    (List.filter (fun v -> v <> 0) (List.init n (fun i -> i)))
    (Digraph.succ g 0);
  Digraph.remove_edge g 0 1;
  check "removed" false (Digraph.mem_edge g 0 1);
  check_int "edge count after removal" ((n * (n - 1)) - 1) (Digraph.edge_count g)

let test_deep_chain_scc () =
  (* The iterative Tarjan must survive deep graphs that would overflow a
     naive recursive implementation's stack. *)
  let n = 200_000 in
  let components = Digraph.scc (path n) in
  check_int "all singletons" n (List.length components)

(* Properties *)

let gen_dag =
  QCheck2.Gen.(
    let* n = int_range 1 30 in
    let* edges = list_size (int_range 0 60) (pair (int_range 0 (n - 1)) (int_range 0 (n - 1))) in
    return (n, edges))

let build_graph (n, edges) ~only_forward =
  let g = Digraph.create () in
  let _ = Digraph.add_nodes g n in
  List.iter
    (fun (u, v) ->
      if (not only_forward) || u < v then if u <> v then Digraph.add_edge g u v)
    edges;
  g

let prop_topo_respects_edges =
  QCheck2.Test.make ~name:"topological order puts sources before targets" ~count:200 gen_dag
    (fun input ->
      let g = build_graph input ~only_forward:true in
      match Digraph.topological_sort g with
      | None -> false (* forward-only edges cannot cycle *)
      | Some order ->
        let position = Hashtbl.create 16 in
        List.iteri (fun i v -> Hashtbl.replace position v i) order;
        Digraph.fold_edges
          (fun u v ok -> ok && Hashtbl.find position u < Hashtbl.find position v)
          g true)

let prop_scc_is_partition =
  QCheck2.Test.make ~name:"scc components partition the nodes" ~count:200 gen_dag (fun input ->
      let g = build_graph input ~only_forward:false in
      let all = List.sort compare (List.concat (Digraph.scc g)) in
      all = Digraph.nodes g)

let prop_colouring_valid =
  QCheck2.Test.make ~name:"when a 2-colouring exists it is proper" ~count:200 gen_dag
    (fun input ->
      let g = build_graph input ~only_forward:false in
      match Digraph.two_colouring g with
      | None -> true
      | Some colour ->
        Digraph.fold_edges (fun u v ok -> ok && colour u <> colour v) g true)

let () =
  Alcotest.run "digraph"
    [
      ( "construction",
        [
          Alcotest.test_case "empty" `Quick test_empty;
          Alcotest.test_case "node ids are dense" `Quick test_add_node_ids;
          Alcotest.test_case "parallel edges collapse" `Quick test_add_edge_dedup;
          Alcotest.test_case "edge to unknown node" `Quick test_add_edge_bogus;
          Alcotest.test_case "remove edge" `Quick test_remove_edge;
          Alcotest.test_case "degrees and adjacency" `Quick test_degrees;
          Alcotest.test_case "copy is independent" `Quick test_copy_independent;
          Alcotest.test_case "dense construction is linear" `Quick test_dense_construction;
        ] );
      ( "algorithms",
        [
          Alcotest.test_case "topological sort of a path" `Quick test_topo_path;
          Alcotest.test_case "cycle detection" `Quick test_topo_cycle;
          Alcotest.test_case "reachability" `Quick test_reachable;
          Alcotest.test_case "scc of a cycle" `Quick test_scc_cycle;
          Alcotest.test_case "scc of a dag" `Quick test_scc_dag;
          Alcotest.test_case "scc of two linked cycles" `Quick test_scc_two_cycles;
          Alcotest.test_case "undirected components" `Quick test_components;
          Alcotest.test_case "even cycle 2-colourable" `Quick test_two_colouring_even;
          Alcotest.test_case "odd cycle not 2-colourable" `Quick test_two_colouring_odd;
          Alcotest.test_case "iterative scc survives deep chains" `Slow test_deep_chain_scc;
        ] );
      ( "properties",
        List.map QCheck_alcotest.to_alcotest
          [ prop_topo_respects_edges; prop_scc_is_partition; prop_colouring_valid ] );
    ]
