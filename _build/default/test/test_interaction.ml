open Exchange

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let contains haystack needle =
  let lh = String.length haystack and ln = String.length needle in
  let rec scan i = i + ln <= lh && (String.sub haystack i ln = needle || scan (i + 1)) in
  ln = 0 || scan 0

let example1 = Interaction.of_spec Workload.Scenarios.example1
let example2 = Interaction.of_spec Workload.Scenarios.example2

let test_figure1_shape () =
  (* Figure 1: c - t1 - b - t2 - p, five nodes in a path. *)
  let g = Interaction.graph example1 in
  check_int "five parties" 5 (Trust_graph.Digraph.node_count g);
  check_int "four edges" 4 (Trust_graph.Digraph.edge_count g);
  let comps = Trust_graph.Digraph.undirected_components g in
  check_int "connected" 1 (List.length comps)

let test_figure2_shape () =
  (* Figure 2: 5 principals + 4 intermediaries, 8 edges. *)
  let g = Interaction.graph example2 in
  check_int "nine parties" 9 (Trust_graph.Digraph.node_count g);
  check_int "eight edges" 8 (Trust_graph.Digraph.edge_count g)

let test_bipartite () =
  check "example1 bipartite" true (Interaction.is_bipartite example1);
  check "example2 bipartite" true (Interaction.is_bipartite example2)

let test_node_mapping () =
  let b = Party.broker "b" in
  let n = Interaction.node_of_party example1 b in
  check "round trip" true (Party.equal (Interaction.party_of_node example1 n) b);
  Alcotest.check_raises "unknown party" Not_found (fun () ->
      ignore (Interaction.node_of_party example1 (Party.consumer "nobody")))

let test_degree () =
  check_int "broker degree 2" 2 (Interaction.degree example1 (Party.broker "b"));
  check_int "consumer degree 1" 1 (Interaction.degree example1 (Party.consumer "c"));
  check_int "consumer in ex2 degree 2" 2 (Interaction.degree example2 (Party.consumer "c"))

let test_internal_nodes () =
  Alcotest.(check (list string)) "figure 1 internals" [ "b"; "t2"; "t1" ]
    (List.map Party.name (Interaction.internal_nodes example1));
  check_int "figure 2 internals" 7 (List.length (Interaction.internal_nodes example2))

let test_edge_of_commitment () =
  let u, v = Interaction.edge_of_commitment example1 { Spec.deal = "cb"; side = Spec.Left } in
  check "principal end" true
    (Party.equal (Interaction.party_of_node example1 u) (Party.consumer "c"));
  check "trusted end" true
    (Party.equal (Interaction.party_of_node example1 v) (Party.trusted "t1"))

let test_dot () =
  let dot = Interaction.to_dot example1 in
  check "undirected" true (contains dot "graph");
  check "trusted drawn as box" true (contains dot "box");
  check "principal drawn as circle" true (contains dot "circle");
  check "labels parties" true (contains dot "b:broker")

let prop_generated_bipartite =
  QCheck2.Test.make ~name:"generated interaction graphs satisfy the section-3 invariant"
    ~count:100 QCheck2.Gen.int (fun seed ->
      let rng = Workload.Prng.create (Int64.of_int seed) in
      let spec = Workload.Gen.random_transaction rng Workload.Gen.default_mix in
      Interaction.is_bipartite (Interaction.of_spec spec))

let () =
  Alcotest.run "interaction"
    [
      ( "figures",
        [
          Alcotest.test_case "figure 1 shape" `Quick test_figure1_shape;
          Alcotest.test_case "figure 2 shape" `Quick test_figure2_shape;
          Alcotest.test_case "bipartite" `Quick test_bipartite;
        ] );
      ( "queries",
        [
          Alcotest.test_case "node mapping" `Quick test_node_mapping;
          Alcotest.test_case "degrees" `Quick test_degree;
          Alcotest.test_case "internal nodes" `Quick test_internal_nodes;
          Alcotest.test_case "edge of commitment" `Quick test_edge_of_commitment;
          Alcotest.test_case "dot rendering" `Quick test_dot;
        ] );
      ("properties", [ QCheck_alcotest.to_alcotest prop_generated_bipartite ]);
    ]
