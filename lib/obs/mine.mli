(** Trace mining: fold kept sessions into a per-shape incident
    scoreboard.

    The ring retains every anomalous session (violation > retry >
    expiry > lint, plus the head-sampled baseline) but nothing reads
    those tails. This module closes the loop: it folds decoded ring
    records — an offline [TSR1] dump or a live drain — into one row
    per {e spec shape} (the canonical FNV hash {!Trust_serve.Shape}
    stamps on every session root span), counting keep reasons,
    retry/expiry outcomes, exposure-bound violations and per-phase
    self-time ({!Analysis.phase_stats}). The scoreboard is what the
    serve/daemon feedback policy consumes: shapes that repeatedly
    retry or expire are pre-warm/pin candidates; shapes whose tails
    show §5 exposure violations are deny candidates.

    Everything is a pure function of span views, so the scoreboard is
    byte-identical whether the views came from a ring dump, a live
    drain, or the re-parsed JSONL export, and whatever [--jobs]
    produced them. Sessions are attributed through the deterministic
    root-span attributes ([shape], [status], [attempts], [violations],
    [keep], …); a session carrying no [shape] attribute (e.g. a
    sampled parse failure, which never reaches the scheduler) is
    folded under the placeholder shape ["-"]. *)

type row = {
  shape : string;  (** 16-hex canonical FNV shape hash, or ["-"] *)
  sessions : int;  (** kept sessions folded into this row *)
  k_sampled : int;  (** keep-reason tallies… *)
  k_violation : int;
  k_retry : int;
  k_expiry : int;
  k_lint : int;
  settled : int;  (** …terminal-status tallies… *)
  expired : int;
  aborted : int;
  retried : int;  (** sessions that ran more than one attempt *)
  attempts : int;  (** summed attempts *)
  violations : int;  (** summed §5 single-transfer-bound violations *)
  violation_sessions : int;  (** sessions with at least one violation *)
  exposure_ticks : int;  (** summed virtual ticks with value at risk *)
  ticks : int;  (** summed virtual session duration *)
  self_vt : (string * int) list;  (** per-phase self time, sorted by phase *)
}

type t

val empty : t

val add_views : t -> Obs.span_view list -> t
(** Fold every session present in the views (grouped by
    [view_session]) into the scoreboard. *)

val of_views : Obs.span_view list -> t
(** [add_views empty]. *)

val of_sessions : Ring.session list -> t
(** Fold decoded ring sessions — identical to {!of_views} over their
    concatenated views (the keep reason is read from the [keep] root
    attribute, not from the ring envelope, so the offline-JSONL path
    cannot drift). *)

val sessions : t -> int
(** Total sessions folded. *)

val shapes : t -> int
(** Distinct shapes observed. *)

val rows : t -> row list
(** Severity order: violation sessions, then retry+expiry incidents,
    then traffic, ties broken by shape hex — a total deterministic
    order. *)

val retry_rate : row -> float
val expiry_rate : row -> float
(** Fractions of the row's sessions ([0.] when empty). *)

val pin_candidates : ?min_incidents:int -> t -> string list
(** Shapes that repeatedly retried or expired ([retried + expired >=
    min_incidents], default 1) without a single exposure violation —
    the hot-but-struggling set worth pinning/pre-warming. Hottest
    first (incidents, then sessions, then shape hex); never includes
    the placeholder shape. *)

val deny_candidates : ?min_violations:int -> t -> string list
(** Shapes whose kept sessions show at least [min_violations]
    (default 1) sessions violating the §5 bound — candidates for
    refusal at admission. Worst first. *)

val json : t -> string
(** Canonical JSON (one line): totals plus every row in {!rows} order.
    Byte-identical for equal scoreboards — the determinism contract
    tests compare this string. *)

val table : t -> string
(** {!Report.Table} rendering of {!rows} (keeps abbreviated to
    [s/v/r/e/l], self time condensed to the top three phases). *)
