(** Source locations for DSL error reporting. *)

type t = { line : int; col : int }

val start : t
val advance : t -> char -> t
(** Next position after reading the character (newline resets column). *)

val compare : t -> t -> int
(** Document order: by line, then column. Used to sort collected
    diagnostics deterministically. *)

val pp : Format.formatter -> t -> unit

val pp_located : ?file:string -> Format.formatter -> t -> unit
(** The compact compiler-style prefix: [file:line:col] when [file] is
    given, [line:col] otherwise. *)

type 'a located = { value : 'a; loc : t }

val at : t -> 'a -> 'a located
