(* The experiment harness: regenerates every claim-bearing figure and
   worked example of the paper (experiments E1-E10, see DESIGN.md and
   EXPERIMENTS.md) and times the algorithms with Bechamel (B1-B7).

   Usage:
     main.exe                 run every experiment table + timing benches
     main.exe --table E6      run one experiment
     main.exe --bechamel      only the timing benches
     main.exe --quick         smaller sweeps (CI-friendly)
     main.exe --serve-json    serve-layer throughput benchmark, JSON on stdout
                              (the BENCH_serve.json baseline); with
                              --trace FILE also lands the per-session
                              span JSONL of the measured run

     main.exe --parallel-json multicore scaling sweep over --jobs 1/2/4/8, JSON
                              on stdout (the BENCH_parallel.json baseline)
     main.exe --obs-json      tracing overhead: the serve workload with the
                              batch trace registry off vs on, JSON on stdout
                              (the BENCH_obs.json baseline)
     main.exe --daemon-json   daemon soak: a live server on a Unix socket
                              under the million-principal Zipf load
                              generator, JSON on stdout
                              (the BENCH_daemon.json baseline)
     main.exe --analyze-json  static exposure analysis cost, cold abstract
                              interpretation vs a warm protocol-cache hit,
                              JSON on stdout (the BENCH_analyze.json baseline)
     main.exe --hotpath-json  compiled plan runtime vs the interpreted
                              reference: sessions/sec, per-hit minor
                              allocation, digest equality at jobs 1/4,
                              JSON on stdout (the BENCH_hotpath.json baseline)
     main.exe --mine-json     trace-mining feedback loop: a defect-heavy
                              observation run is mined from its ring, then
                              identical follow-up traffic runs with the
                              pin/pre-warm/deny policy off vs on, JSON on
                              stdout (the BENCH_mine.json baseline)

   Every JSON emitter carries a "host" block (cores, OS, arch) so
   committed baselines record what hardware produced them.
*)

open Exchange
module Sequencing = Trust_core.Sequencing
module Reduce = Trust_core.Reduce
module Execution = Trust_core.Execution
module Feasibility = Trust_core.Feasibility
module Indemnity = Trust_core.Indemnity
module Cost = Trust_core.Cost
module Table = Report.Table

let quick = ref false

(* What hardware produced a committed baseline: spliced into every
   JSON emitter so BENCH_*.json numbers can be read in context. *)
let uname flag =
  try
    let ic = Unix.open_process_in ("uname " ^ flag ^ " 2>/dev/null") in
    let line = try input_line ic with End_of_file -> "" in
    ignore (Unix.close_process_in ic);
    if line = "" then "unknown" else line
  with _ -> "unknown"

let host_json =
  let memo = ref None in
  fun () ->
    match !memo with
    | Some j -> j
    | None ->
      let j =
        Printf.sprintf {|{"cores":%d,"os":"%s","arch":"%s"}|}
          (Domain.recommended_domain_count ()) (uname "-s") (uname "-m")
      in
      memo := Some j;
      j

let yes_no b = if b then "yes" else "no"
let feasible_str b = if b then "FEASIBLE" else "infeasible"

(* E1: Example #1 reduction (Figures 3 and 5, section 4.2.2) *)

let e1 () =
  Table.section "E1  Example #1 reduction (Figs. 3/5, para 4.2.2)";
  let g = Sequencing.build Workload.Scenarios.example1 in
  Printf.printf "sequencing graph: %d commitment nodes, %d conjunction nodes, %d edges\n\n"
    (Sequencing.commitment_count g) (Sequencing.conjunction_count g) (Sequencing.edge_count g);
  let outcome = Reduce.run g in
  let rows =
    List.map
      (fun (d : Reduce.deletion) ->
        let c = Sequencing.commitment g d.Reduce.cid in
        let j = Sequencing.conjunction g d.Reduce.jid in
        [
          string_of_int d.Reduce.step;
          Format.asprintf "%a" Reduce.pp_rule d.Reduce.rule;
          Printf.sprintf "%s|%s -- AND %s"
            (Party.name c.Sequencing.agent)
            (Party.name c.Sequencing.principal)
            (Party.name j.Sequencing.owner);
          Format.asprintf "%a" Sequencing.pp_colour d.Reduce.colour;
        ])
      outcome.Reduce.deletions
  in
  Table.print ~header:[ "step"; "rule"; "edge"; "colour" ] rows;
  Printf.printf "\nverdict: %s   (paper: feasible, all six edges removed)\n"
    (feasible_str (Reduce.feasible outcome))

(* E2: the section-5 execution sequence *)

let e2 () =
  Table.section "E2  Example #1 execution sequence (para 5)";
  let analysis = Feasibility.analyze Workload.Scenarios.example1 in
  match analysis.Feasibility.sequence with
  | None -> print_endline "UNEXPECTED: infeasible"
  | Some seq ->
    let expected = Workload.Scenarios.paper_example1_actions in
    let rows =
      List.mapi
        (fun i step ->
          let paper = List.nth_opt expected i in
          [
            string_of_int (i + 1);
            Action.to_string step.Execution.action;
            (match paper with
            | Some a when Action.equal a step.Execution.action -> "=="
            | Some a -> "PAPER: " ^ Action.to_string a
            | None -> "(extra)");
          ])
        seq.Execution.steps
    in
    Table.print ~header:[ "#"; "synthesized action"; "vs paper" ] rows;
    let matches =
      List.length expected = List.length seq.Execution.steps
      && List.for_all2 Action.equal (Execution.actions seq) expected
    in
    Printf.printf "\nexact match with the paper's ten steps: %s\n" (yes_no matches)

(* E3: Example #2 impasse (Figures 4 and 6) *)

let e3 () =
  Table.section "E3  Example #2 impasse (Figs. 4/6, para 4.2.2)";
  let g = Sequencing.build Workload.Scenarios.example2 in
  let edges0 = Sequencing.edge_count g in
  let outcome = Reduce.run g in
  let remaining =
    match outcome.Reduce.verdict with
    | Reduce.Feasible -> 0
    | Reduce.Stuck { remaining } -> List.length remaining
  in
  Table.print
    ~header:[ "quantity"; "measured"; "paper" ]
    [
      [ "edges in figure 4"; string_of_int edges0; "14" ];
      [ "deletions before impasse"; string_of_int (List.length outcome.Reduce.deletions); "4" ];
      [ "edges stuck (figure 6)"; string_of_int remaining; "10" ];
      [ "feasible"; yes_no (Reduce.feasible outcome); "no" ];
    ]

(* E4: direct-trust variants (para 4.2.3) *)

let e4 () =
  Table.section "E4  Trust asymmetry (para 4.2.3)";
  let row name spec paper =
    [ name; feasible_str (Feasibility.is_feasible spec); paper ]
  in
  Table.print
    ~header:[ "variant"; "measured"; "paper" ]
    [
      row "example #2 (no direct trust)" Workload.Scenarios.example2 "infeasible";
      row "source1 trusts broker1" Workload.Scenarios.example2_source_trusts_broker "feasible";
      row "broker1 trusts source1" Workload.Scenarios.example2_broker_trusts_source "infeasible";
    ]

(* E5: the poor broker (para 5, end) *)

let e5 () =
  Table.section "E5  Poor broker (para 5)";
  let outcome = Reduce.run (Sequencing.build Workload.Scenarios.example1_poor_broker) in
  let reds_stuck =
    match outcome.Reduce.verdict with
    | Reduce.Feasible -> 0
    | Reduce.Stuck { remaining } ->
      List.length (List.filter (fun (_, _, c) -> c = Sequencing.Red) remaining)
  in
  Table.print
    ~header:[ "quantity"; "measured"; "paper" ]
    [
      [ "feasible"; yes_no (Reduce.feasible outcome); "no" ];
      [ "mutually pre-empting red edges"; string_of_int reds_stuck; "2" ];
    ]

(* E6: Figure 7 indemnity orderings *)

let e6 () =
  Table.section "E6  Indemnity orderings (Fig. 7, para 6)";
  let spec = Workload.Scenarios.fig7 in
  let owner = Workload.Scenarios.fig7_consumer in
  let describe plan =
    String.concat ", "
      (List.map
         (fun o ->
           Printf.sprintf "%s sets %s aside"
             (Party.name o.Indemnity.offered_by)
             (Table.money o.Indemnity.amount))
         plan.Indemnity.offers)
  in
  let worst = Indemnity.plan_worst spec ~owner in
  let greedy = Indemnity.plan_greedy spec ~owner in
  Table.print
    ~header:[ "ordering"; "offers"; "total"; "paper" ]
    [
      [ "order #1 (worst)"; describe worst; Table.money worst.Indemnity.total; "$90" ];
      [ "order #2 (greedy)"; describe greedy; Table.money greedy.Indemnity.total; "$70" ];
      [
        "exhaustive minimum";
        "(all orderings)";
        Table.money (Indemnity.exhaustive_minimum spec ~owner);
        "$70";
      ];
    ];
  let split = Indemnity.apply greedy spec in
  Printf.printf "\nfig7 without indemnities: %s; with the greedy plan: %s\n"
    (feasible_str (Feasibility.is_feasible spec))
    (feasible_str (Feasibility.is_feasible split))

(* E7: cost of mistrust (para 8) *)

let e7 () =
  Table.section "E7  Cost of mistrust (para 8)";
  let tally_of spec =
    match (Feasibility.analyze spec).Feasibility.sequence with
    | Some seq -> Some (Cost.tally_sequence seq)
    | None -> None
  in
  let show = function
    | Some t ->
      Printf.sprintf "%d (%d xfer + %d ntf)" t.Cost.total t.Cost.transfers t.Cost.notifications
    | None -> "infeasible"
  in
  let row name spec =
    let mediated = tally_of spec in
    let direct = tally_of (Cost.with_all_direct_trust spec) in
    let universal = Cost.universal_tally spec in
    let simulated =
      let result, _ = Trust_sim.Harness.universal_run spec in
      List.length result.Trust_sim.Engine.log
    in
    [
      name;
      show mediated;
      show direct;
      Printf.sprintf "%d (simulated %d)" universal.Cost.total simulated;
    ]
  in
  Table.print
    ~header:[ "exchange"; "pairwise escrow"; "full direct trust"; "universal agent" ]
    [
      row "simple sale" Workload.Scenarios.simple_sale;
      row "example #1 (1 broker)" Workload.Scenarios.example1;
      row "chain, 3 brokers" (Workload.Gen.chain ~brokers:3);
      row "chain, 8 brokers" (Workload.Gen.chain ~brokers:8);
      row "example #2" Workload.Scenarios.example2;
      row "fig. 7" Workload.Scenarios.fig7;
    ];
  print_newline ();
  print_string
    (Table.kv
       [
         ("paper claim", "2 messages per trusting pair vs 4 through an intermediary");
         ("measured", "2 transfers/deal direct vs 4 transfers + 1 notification/deal mediated");
         ("universal agent", "always feasible, 4 transfers/deal, no notifications");
       ])

(* E8: simulated safety (paras 1, 2.3) *)

let e8 () =
  Table.section "E8  Simulated safety under defection (paras 1/2.3)";
  let scenarios =
    List.filter (fun (_, s) -> Feasibility.is_feasible s) Workload.Scenarios.all
    @ [ ("chain3", Workload.Gen.chain ~brokers:3); ("bundle3", Workload.Gen.bundle ~docs:3) ]
  in
  let fig7 = Workload.Scenarios.fig7 in
  let fig7_plan = Indemnity.plan_greedy fig7 ~owner:Workload.Scenarios.fig7_consumer in
  let run_sweep name spec plan =
    let defectors = Trust_sim.Harness.defectable_principals spec in
    let modes =
      [ Trust_sim.Harness.Silent; Trust_sim.Harness.Partial 1; Trust_sim.Harness.Partial 2 ]
    in
    let runs = ref 0 and no_loss = ref 0 and acceptable = ref 0 in
    List.iter
      (fun defector ->
        List.iter
          (fun mode ->
            match
              Trust_sim.Harness.adversarial_run ?plan ~defectors:[ (defector, mode) ] spec
            with
            | Error _ -> ()
            | Ok result ->
              incr runs;
              let report = Trust_sim.Audit.audit spec ?plan ~defectors:[ defector ] result in
              if report.Trust_sim.Audit.honest_no_loss then incr no_loss;
              if report.Trust_sim.Audit.honest_all_acceptable then incr acceptable)
          modes)
      defectors;
    let preferred =
      match Trust_sim.Harness.honest_run ?plan spec with
      | Ok result -> (Trust_sim.Audit.audit spec ?plan result).Trust_sim.Audit.all_preferred
      | Error _ -> false
    in
    [
      name;
      yes_no preferred;
      Printf.sprintf "%d/%d" !no_loss !runs;
      Printf.sprintf "%d/%d" !acceptable !runs;
    ]
  in
  let rows =
    List.map (fun (name, spec) -> run_sweep name spec None) scenarios
    @ [ run_sweep "fig7 + greedy indemnities" fig7 (Some fig7_plan) ]
  in
  Table.print
    ~header:
      [ "scenario"; "honest run preferred"; "no-loss (defection)"; "acceptable (defection)" ]
    rows;
  print_newline ();
  print_string
    (Table.kv
       [
         ("reading", "no-loss = nobody loses an asset (the para-1 guarantee, unconditional)");
         ("", "acceptable = bundles also stay all-or-nothing; needs escrowed or indemnified pieces");
       ])

(* E9: Petri-net baseline (para 7.4) *)

let e9 () =
  Table.section "E9  Petri-net baseline (para 7.4)";
  let rows =
    List.map
      (fun (name, spec) ->
        let verdict, stats = Petri.Encode.feasible (Petri.Encode.of_spec spec) in
        let graph = Feasibility.is_feasible spec in
        let petri =
          match verdict with
          | `Feasible -> "feasible"
          | `Infeasible -> "infeasible"
          | `Unknown -> "unknown"
        in
        [
          name;
          feasible_str graph;
          petri;
          string_of_int stats.Petri.Analysis.explored;
          yes_no ((verdict = `Feasible) = graph);
        ])
      Workload.Scenarios.all
  in
  Table.print ~header:[ "scenario"; "graph reduction"; "petri search"; "states"; "agree" ] rows;
  Printf.printf "\nstate-space growth (reduction-order interleavings of a k-document bundle):\n\n";
  let ks = if !quick then [ 1; 2; 3; 4; 5 ] else [ 1; 2; 3; 4; 5; 6; 7; 8 ] in
  let rows =
    List.map
      (fun k ->
        let spec = Workload.Gen.bundle ~docs:k in
        let states =
          match Petri.Encode.reduction_orders (Petri.Encode.of_spec spec) with
          | Some n -> string_of_int n
          | None -> ">bound"
        in
        let deletions = List.length (Reduce.run (Sequencing.build spec)).Reduce.deletions in
        [ string_of_int k; states; string_of_int deletions ])
      ks
  in
  Table.print ~header:[ "k"; "petri states (exhaustive)"; "greedy deletions" ] rows;
  print_endline "\nshape: exhaustive exploration grows ~4^k; the greedy reduction stays linear."

(* E10: generalization sweeps *)

let e10 () =
  Table.section "E10  Feasibility phase diagram (paras 3.2/6/8)";
  print_endline "broker chains (always feasible; 5 messages per deal):\n";
  let ns = if !quick then [ 0; 1; 2; 4; 8 ] else [ 0; 1; 2; 4; 8; 16; 32 ] in
  Table.print
    ~header:[ "brokers"; "feasible"; "messages"; "messages (direct trust)" ]
    (List.map
       (fun n ->
         let msg spec =
           match (Feasibility.analyze spec).Feasibility.sequence with
           | Some seq -> string_of_int (Execution.message_count seq)
           | None -> "-"
         in
         [
           string_of_int n;
           yes_no (Feasibility.is_feasible (Workload.Gen.chain ~brokers:n));
           msg (Workload.Gen.chain ~brokers:n);
           msg (Workload.Gen.chain_direct ~brokers:n);
         ])
       ns);
  print_endline
    "\ndocument fans (infeasible for k>=2 until indemnified; greedy total = (k-2)S + min):\n";
  let ks = if !quick then [ 1; 2; 3; 4 ] else [ 1; 2; 3; 4; 5; 6 ] in
  Table.print
    ~header:[ "k"; "feasible bare"; "greedy indemnity"; "formula"; "feasible after" ]
    (List.map
       (fun k ->
         let prices = List.init k (fun i -> Asset.dollars (10 * (i + 1))) in
         let spec = Workload.Gen.fan ~prices in
         let s = List.fold_left ( + ) 0 prices in
         let formula = if k < 2 then 0 else ((k - 2) * s) + List.fold_left min max_int prices in
         let plan = Indemnity.plan_greedy spec ~owner:Workload.Gen.fan_consumer in
         [
           string_of_int k;
           yes_no (Feasibility.is_feasible spec);
           Table.money plan.Indemnity.total;
           Table.money formula;
           yes_no (Feasibility.is_feasible (Indemnity.apply plan spec));
         ])
       ks);
  print_endline "\nfeasibility rate vs direct-trust density (random transaction mix):\n";
  let samples = if !quick then 100 else 400 in
  Table.print
    ~header:[ "trust density"; "feasible"; "rescuable by indemnities" ]
    (List.map
       (fun density ->
         let rng = Workload.Prng.create 2026L in
         let mix = { Workload.Gen.default_mix with Workload.Gen.trust_density = density } in
         let specs = Workload.Gen.random_transactions rng mix samples in
         let feasible = List.length (List.filter Feasibility.is_feasible specs) in
         let rescuable =
           List.length (List.filter (fun s -> Feasibility.rescue_with_indemnities s <> None) specs)
         in
         [
           Printf.sprintf "%.1f" density;
           Printf.sprintf "%3d%%" (100 * feasible / samples);
           Printf.sprintf "%3d%%" (100 * rescuable / samples);
         ])
       [ 0.0; 0.2; 0.4; 0.6; 0.8; 1.0 ])

(* E11: the section-9 extensions *)

let e11 () =
  Table.section "E11  Extensions (para 9: shared agents, trust webs, deadlines)";
  print_endline "an agent trusted by more than two parties (shared-agent bundle):\n";
  let c = Party.consumer "c" and t = Party.trusted "t" in
  let shared_bundle =
    Spec.make_exn
      [
        Spec.sale ~id:"a" ~buyer:c ~seller:(Party.producer "p1") ~via:t
          ~price:(Asset.dollars 10) ~good:"d1";
        Spec.sale ~id:"b" ~buyer:c ~seller:(Party.producer "p2") ~via:t
          ~price:(Asset.dollars 20) ~good:"d2";
      ]
  in
  Table.print
    ~header:[ "analysis"; "verdict" ]
    [
      [ "paper rules (monolithic agent conjunction)"; feasible_str (Feasibility.is_feasible shared_bundle) ];
      [ "extended rules (Rule #3 + atomic agent)"; feasible_str (Feasibility.is_feasible ~shared:true shared_bundle) ];
    ];
  print_endline "\nhierarchy of trust: routed batch over a web (two trust domains):\n";
  let module Routing = Trust_core.Routing in
  let alice = Party.consumer "alice" and bob = Party.producer "bob" in
  let dave = Party.producer "dave" in
  let carol = Party.broker "carol" and dora = Party.broker "dora" in
  let bank = Party.trusted "bank" and notary = Party.trusted "notary" in
  let trusts =
    Routing.mutual alice bank
    @ Routing.mutual carol bank @ Routing.mutual carol notary
    @ Routing.mutual dora bank @ Routing.mutual dora notary
    @ Routing.mutual bob notary @ Routing.mutual dave notary
  in
  let requests =
    [
      Routing.{ id = "x"; buyer = alice; seller = bob; price = Asset.dollars 10; good = "dx" };
      Routing.{ id = "y"; buyer = alice; seller = dave; price = Asset.dollars 20; good = "dy" };
    ]
  in
  (match Routing.connect ~relays:[ carol; dora ] ~trusts requests with
  | Error e -> print_endline ("routing failed: " ^ e)
  | Ok routed ->
    List.iter
      (fun (id, route) -> Format.printf "  %-3s %a@." id Routing.pp_routing route)
      routed.Routing.routes;
    let spec = routed.Routing.spec in
    let rescue = Feasibility.rescue_with_indemnities ~shared:true spec in
    Table.print
      ~header:[ "analysis"; "verdict" ]
      [
        [ "bare (either rule set)"; feasible_str (Feasibility.is_feasible ~shared:true spec) ];
        [
          "with the indemnity rescue (granular agents)";
          (match rescue with
          | Some r ->
            Printf.sprintf "FEASIBLE at %s escrowed"
              (Table.money (Feasibility.total_indemnity r))
          | None -> "unrescuable");
        ];
      ]);
  print_endline "\nper-deal deadlines (para 2.2): a 3-tick inner escrow in example #1:\n";
  let b = Party.broker "b" and p = Party.producer "p" and c = Party.consumer "c" in
  let t1 = Party.trusted "t1" and t2 = Party.trusted "t2" in
  let tight =
    Spec.make_exn
      ~priorities:[ (b, { Spec.deal = "cb"; side = Spec.Right }) ]
      [
        Spec.with_deadline 3
          (Spec.sale ~id:"bp" ~buyer:b ~seller:p ~via:t2 ~price:(Asset.dollars 8) ~good:"d");
        Spec.sale ~id:"cb" ~buyer:c ~seller:b ~via:t1 ~price:(Asset.dollars 10) ~good:"d";
      ]
  in
  (match Trust_sim.Harness.honest_run tight with
  | Error e -> print_endline e
  | Ok result ->
    let report = Trust_sim.Audit.audit tight result in
    Table.print
      ~header:[ "outcome"; "value" ]
      [
        [ "deliveries before/after expiry"; string_of_int (List.length result.Trust_sim.Engine.log) ];
        [ "preferred outcome reached"; yes_no report.Trust_sim.Audit.all_preferred ];
        [ "any honest asset lost"; yes_no (not report.Trust_sim.Audit.honest_no_loss) ];
      ];
    print_endline
      "the partial exchange expires and unwinds: nobody completes, nobody loses.")

(* E12: exposure profiles — the asset-at-risk side of the cost of
   mistrust *)

let e12 () =
  Table.section "E12  Exposure profiles (risk over time, para 8 extended)";
  let module Trace = Trust_sim.Trace in
  let trace_of ?plan spec =
    match Trust_sim.Harness.honest_run ?plan spec with
    | Ok result -> Some (Trace.of_result spec result)
    | Error _ -> None
  in
  let row name ?plan spec =
    match trace_of ?plan spec with
    | None -> [ name; "infeasible"; "-"; "-" ]
    | Some trace ->
      let peaks =
        List.map
          (fun party -> Printf.sprintf "%s=%s" (Party.name party) (Table.money (Trace.peak_exposure trace party)))
          (Spec.principals spec)
      in
      [
        name;
        string_of_int (Trace.duration trace);
        Table.money (Trace.total_peak_exposure trace);
        String.concat " " peaks;
      ]
  in
  let fig7 = Workload.Scenarios.fig7 in
  let fig7_plan = Indemnity.plan_greedy fig7 ~owner:Workload.Scenarios.fig7_consumer in
  Table.print
    ~header:[ "run"; "ticks"; "total peak exposure"; "per-principal peaks" ]
    [
      row "example #1 (mediated)" Workload.Scenarios.example1;
      row "example #1 (direct trust)" (Cost.with_all_direct_trust Workload.Scenarios.example1);
      row "chain, 3 brokers" (Workload.Gen.chain ~brokers:3);
      row "bundle, 3 documents" (Workload.Gen.bundle ~docs:3);
      row "fig7 + indemnities" ~plan:fig7_plan fig7;
    ];
  print_newline ();
  print_string
    (Table.kv
       [
         ( "peak exposure",
           "the worst uncovered position a party is ever in (outlay - received value)" );
         ("invariant", "honest runs always end fully covered; tests extend this to defection runs");
       ])

(* Bechamel timing benches *)

let bechamel_benches () =
  Table.section "B  Bechamel timing (ns/run, ordinary least squares)";
  let open Bechamel in
  let chain_specs = List.map (fun n -> (n, Workload.Gen.chain ~brokers:n)) [ 10; 100; 1000 ] in
  let fan_specs =
    List.map
      (fun k -> (k, Workload.Gen.fan ~prices:(List.init k (fun i -> Asset.dollars (i + 1)))))
      [ 10; 100 ]
  in
  (* Reduction benches run on a copy of a prebuilt graph so they time
     the reducers, not the (quadratic) graph construction; B0 reports
     construction separately. *)
  let prebuilt = List.map (fun (n, spec) -> (n, Sequencing.build spec)) chain_specs in
  let prebuilt_fans = List.map (fun (k, spec) -> (k, Sequencing.build spec)) fan_specs in
  let tests =
    [
      (let spec = Workload.Gen.chain ~brokers:1000 in
       Test.make ~name:"B0 build sequencing graph, chain 1000"
         (Staged.stage (fun () -> ignore (Sequencing.build spec))));
    ]
    @ List.map
        (fun (n, g0) ->
          Test.make
            ~name:(Printf.sprintf "B1 reduce chain %d" n)
            (Staged.stage (fun () -> ignore (Reduce.run (Sequencing.copy g0)))))
        prebuilt
    @ List.map
        (fun (k, g0) ->
          Test.make
            ~name:(Printf.sprintf "B2 reduce fan %d" k)
            (Staged.stage (fun () -> ignore (Reduce.run (Sequencing.copy g0)))))
        prebuilt_fans
    @ [
        (let g0 = Sequencing.build (Workload.Gen.chain ~brokers:100) in
         let rng = Workload.Prng.create 7L in
         Test.make ~name:"B3 randomized-order reduce chain 100"
           (Staged.stage (fun () ->
                ignore
                  (Reduce.run_randomized
                     ~choose:(fun n -> Workload.Prng.int rng n)
                     (Sequencing.copy g0)))));
        (let spec = Workload.Gen.fan ~prices:(List.init 100 (fun i -> Asset.dollars (i + 1))) in
         Test.make ~name:"B4 indemnity plan fan 100"
           (Staged.stage (fun () ->
                ignore (Indemnity.plan_greedy spec ~owner:Workload.Gen.fan_consumer))));
        (let spec = Workload.Gen.bundle ~docs:5 in
         Test.make ~name:"B5 petri exhaustive bundle 5"
           (Staged.stage (fun () -> ignore (Petri.Encode.feasible (Petri.Encode.of_spec spec)))));
        (let spec = Workload.Gen.chain ~brokers:50 in
         Test.make ~name:"B6 simulate honest chain 50"
           (Staged.stage (fun () ->
                match Trust_sim.Harness.honest_run spec with
                | Ok _ -> ()
                | Error e -> failwith e)));
        (let src = Trust_lang.Printer.to_string (Workload.Gen.chain ~brokers:100) in
         Test.make ~name:"B7 parse+elaborate chain 100"
           (Staged.stage (fun () ->
                match Trust_lang.Elaborate.from_string src with
                | Ok _ -> ()
                | Error e -> failwith e)));
      ]
    @ List.map
        (fun (n, g0) ->
          Test.make
            ~name:(Printf.sprintf "B8 worklist reduce chain %d (ablation)" n)
            (Staged.stage (fun () -> ignore (Reduce.run_worklist (Sequencing.copy g0)))))
        prebuilt
  in
  let ols = Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |] in
  let instance = Toolkit.Instance.monotonic_clock in
  let cfg =
    Benchmark.cfg ~limit:2000 ~quota:(Time.second (if !quick then 0.25 else 1.0)) ~kde:(Some 1000)
      ()
  in
  let rows =
    List.concat_map
      (fun test ->
        let results = Benchmark.all cfg [ instance ] (Test.make_grouped ~name:"g" [ test ]) in
        let analyzed = Analyze.all ols instance results in
        Hashtbl.fold
          (fun name ols acc ->
            let nanos =
              match Analyze.OLS.estimates ols with
              | Some [ est ] -> Printf.sprintf "%.0f" est
              | Some _ | None -> "n/a"
            in
            [ name; nanos ] :: acc)
          analyzed [])
      tests
  in
  Table.print ~header:[ "bench"; "ns/run" ] rows

(* Serve-layer throughput: how fast the concurrent exchange service
   (protocol cache + batch scheduler) pushes a generated workload
   through synthesis and simulation. Emits one JSON object so CI and
   later PRs can track sessions/sec and the cache hit rate; the
   committed baseline lives in BENCH_serve.json. *)

let trace_out = ref None

let serve_json () =
  let module Service = Trust_serve.Service in
  let module Obs = Trust_obs.Obs in
  let sessions = if !quick then 200 else 1000 in
  let config =
    { Service.default with Service.sessions; seed = 42L; trace = !trace_out <> None }
  in
  (* warm once so the measured run prices a hot allocator, then measure *)
  ignore (Service.run { config with Service.trace = false });
  let outcome = Service.run config in
  (match !trace_out with
  | Some path ->
    Out_channel.with_open_text path (fun oc ->
        Out_channel.output_string oc
          (Obs.export ~producer:("bench " ^ Trustseq_version.Version.v) Obs.Jsonl
             (Obs.batch_traces outcome.Service.obs)))
  | None -> ());
  let t = Service.tally outcome.Service.sessions in
  let wall = outcome.Service.wall_seconds in
  let per_sec = if wall > 0. then float_of_int sessions /. wall else 0. in
  Printf.printf
    "{\"bench\":\"serve_throughput\",\"version\":\"%s\",\"host\":%s,\"sessions\":%d,\"seed\":42,\"wall_seconds\":%.4f,\"sessions_per_sec\":%.1f,\"cache_hit_rate\":%.4f,\"settled\":%d,\"expired\":%d,\"aborted\":%d,\"makespan_ticks\":%d,\"concurrency\":%d}\n"
    Trustseq_version.Version.v (host_json ()) sessions wall per_sec
    (Trust_serve.Cache.hit_rate outcome.Service.cache)
    t.Service.settled t.Service.expired t.Service.aborted
    outcome.Service.stats.Trust_serve.Scheduler.makespan
    outcome.Service.config.Service.concurrency

(* Multicore scaling: the same workload at 1/2/4/8 worker domains.
   Real speedup is hardware-dependent (the [cores] field records what
   this host offers); what the suite asserts is the determinism
   contract — every domain count produces the identical per-session
   outcome digest. The committed baseline lives in BENCH_parallel.json. *)

let parallel_json () =
  let module Service = Trust_serve.Service in
  let module Session = Trust_serve.Session in
  let sessions = if !quick then 200 else 1000 in
  let outcome_digest (outcome : Service.outcome) =
    let line (s : Session.t) =
      Printf.sprintf "%d:%s:%d:%d:%d" s.Session.id
        (Session.status_label s.Session.status)
        s.Session.ticks s.Session.events s.Session.attempts
    in
    Printf.sprintf "%016Lx"
      (Trust_serve.Shape.fnv1a
         (String.concat "\n" (List.map line outcome.Service.sessions)))
  in
  let run jobs =
    let config =
      { Service.default with Service.sessions; seed = 42L; jobs; drop_rate = 0.02 }
    in
    (* warm once so the measured run prices a hot allocator and a
       populated protocol cache's steady state, then measure *)
    ignore (Service.run config);
    let outcome = Service.run config in
    let wall = outcome.Service.wall_seconds in
    let per_sec = if wall > 0. then float_of_int sessions /. wall else 0. in
    (jobs, wall, per_sec, outcome_digest outcome)
  in
  let runs = List.map run [ 1; 2; 4; 8 ] in
  let base_per_sec =
    match runs with (_, _, per_sec, _) :: _ -> per_sec | [] -> 0.
  in
  let digests = List.map (fun (_, _, _, d) -> d) runs in
  let digests_match =
    match digests with [] -> true | d :: rest -> List.for_all (String.equal d) rest
  in
  let entries =
    List.map
      (fun (jobs, wall, per_sec, digest) ->
        Printf.sprintf
          "{\"jobs\":%d,\"wall_seconds\":%.4f,\"sessions_per_sec\":%.1f,\"speedup\":%.2f,\"digest\":\"%s\"}"
          jobs wall per_sec
          (if base_per_sec > 0. then per_sec /. base_per_sec else 0.)
          digest)
      runs
  in
  Printf.printf
    "{\"bench\":\"serve_parallel_scaling\",\"host\":%s,\"sessions\":%d,\"seed\":42,\"drop_rate\":0.02,\"cores\":%d,\"digests_match\":%b,\"runs\":[%s]}\n"
    (host_json ()) sessions
    (Domain.recommended_domain_count ())
    digests_match (String.concat "," entries)

(* Production tracing cost: the identical serve workload swept over
   head-sampling rates with the binary ring sink engaged, against a
   fully untraced baseline. The claim-bearing number is the
   overhead_ratio at 1% sampling — docs/OBS.md promises always-on
   tracing priced for production stays within 5% — and the jobs-1 vs
   jobs-4 decoded-ring byte identity, which pins that the sampled set
   and its canonical decode do not depend on domain scheduling. The
   per-rate keep tallies are functions of the seed alone, so they
   double as determinism probes. The committed baseline lives in
   BENCH_obs.json. *)

let obs_json () =
  let module Service = Trust_serve.Service in
  let module Ring = Trust_obs.Ring in
  let module Obs = Trust_obs.Obs in
  let sessions = if !quick then 200 else 1000 in
  let ring_bytes = 1 lsl 20 in
  let config ?(jobs = 1) ?(ring = 0) rate =
    { Service.default with
      Service.sessions;
      seed = 42L;
      jobs;
      drop_rate = 0.0002;
      sample_rate = rate;
      trace_ring = ring
    }
  in
  (* warm once, then best-of-3 to shed scheduler noise — the sampled
     set, the keeps and the ring contents are identical across repeats *)
  let measure cfg =
    ignore (Service.run cfg);
    let best = ref infinity and outcome = ref None in
    for _ = 1 to 5 do
      let o = Service.run cfg in
      if o.Service.wall_seconds < !best then best := o.Service.wall_seconds;
      outcome := Some o
    done;
    (!best, Option.get !outcome)
  in
  (* baseline: no ring, no batch registry — the sampler never engages
     and every session takes the compiled fast path *)
  let wall_untraced, _ = measure (config 0.0) in
  let keep_tally ss keep =
    List.length (List.filter (fun s -> s.Ring.s_keep = keep) ss)
  in
  let point rate =
    let wall, outcome = measure (config ~ring:ring_bytes rate) in
    let ring =
      match outcome.Service.ring with
      | Some ring -> ring
      | None ->
        prerr_endline "obs bench: expected a ring sink";
        exit 2
    in
    match Ring.decode (Ring.dump ring) with
    | Error e ->
      prerr_endline ("obs bench: ring decode failed: " ^ e);
      exit 2
    | Ok (ss, stats) ->
      let ratio = if wall_untraced > 0. then wall /. wall_untraced else 0. in
      Printf.sprintf
        "{\"rate\":%g,\"wall_seconds\":%.4f,\"overhead_ratio\":%.3f,\"ring_sessions\":%d,\"sampled\":%d,\"kept_tail\":%d,\"keeps\":{\"violation\":%d,\"retry\":%d,\"expiry\":%d,\"lint\":%d},\"records_written\":%d,\"records_dropped\":%d}"
        rate wall ratio stats.Ring.d_sessions
        (keep_tally ss Ring.Sampled)
        (List.length ss - keep_tally ss Ring.Sampled)
        (keep_tally ss Ring.Violation)
        (keep_tally ss Ring.Retry) (keep_tally ss Ring.Expiry)
        (keep_tally ss Ring.Lint) stats.Ring.d_written stats.Ring.d_dropped
  in
  let sweep = List.map point [ 0.0; 0.01; 0.1; 1.0 ] in
  (* jobs identity: the decoded ring's canonical export must be
     byte-identical at jobs 1 and jobs 4 (ring sized so nothing wraps;
     eviction order at jobs > 1 is the one scheduling-dependent bit) *)
  let identity_rate = 0.1 in
  let decoded_export jobs =
    let outcome = Service.run (config ~jobs ~ring:(8 * ring_bytes) identity_rate) in
    let ring =
      match outcome.Service.ring with
      | Some ring -> ring
      | None ->
        prerr_endline "obs bench: expected a ring sink";
        exit 2
    in
    match Ring.decode (Ring.dump ring) with
    | Error e ->
      prerr_endline ("obs bench: ring decode failed: " ^ e);
      exit 2
    | Ok (ss, stats) ->
      if stats.Ring.d_dropped <> 0 then begin
        prerr_endline "obs bench: identity ring wrapped; size it up";
        exit 2
      end;
      Ring.export Obs.Jsonl ss
  in
  let jobs_identical = String.equal (decoded_export 1) (decoded_export 4) in
  Printf.printf
    "{\"bench\":\"obs_overhead\",\"version\":\"%s\",\"host\":%s,\"sessions\":%d,\"seed\":42,\"drop_rate\":0.0002,\"ring_bytes\":%d,\"wall_seconds_untraced\":%.4f,\"sweep\":[%s],\"jobs_identity\":{\"rate\":%g,\"jobs\":[1,4],\"byte_identical\":%b}}\n"
    Trustseq_version.Version.v (host_json ()) sessions ring_bytes wall_untraced
    (String.concat "," sweep) identity_rate jobs_identical

(* Daemon soak: a real server (Unix socket, select loop, admission
   control, epoch aging) in a spawned domain, driven by the Zipf load
   generator over the million-principal universe. The claim-bearing
   numbers are throughput, tail latency, and that memory stays bounded
   while the cache ages the long tail out (aged_out > 0). The
   committed baseline lives in BENCH_daemon.json. *)

let daemon_json () =
  let module Server = Trust_daemon.Server in
  let module Loadgen = Trust_daemon.Loadgen in
  let module Procstat = Trust_daemon.Procstat in
  let module Metrics = Trust_serve.Metrics in
  let requests = if !quick then 300 else 5000 in
  let principals = if !quick then 50_000 else 1_000_000 in
  let sock = Printf.sprintf "/tmp/trustseq-bench-%d.sock" (Unix.getpid ()) in
  if Sys.file_exists sock then Sys.remove sock;
  let stop = Atomic.make false in
  let cfg =
    {
      Server.default with
      Server.unix_path = Some sock;
      cache_capacity = 2048;
      epoch_every = 256;
      max_idle_epochs = 2;
    }
  in
  let metrics = Trust_serve.Metrics.create () in
  let srv = Domain.spawn (fun () -> Server.run ~stop ~metrics cfg) in
  let rec await n =
    if Sys.file_exists sock then ()
    else if n = 0 then begin
      Atomic.set stop true;
      ignore (Domain.join srv);
      prerr_endline "daemon soak: server socket never appeared";
      exit 2
    end
    else begin
      (try ignore (Unix.select [] [] [] 0.01) with Unix.Unix_error _ -> ());
      await (n - 1)
    end
  in
  await 500;
  let rss_start = Procstat.rss_kb () in
  let lg =
    {
      Loadgen.default with
      Loadgen.connect = "unix:" ^ sock;
      requests;
      seed = 7L;
      universe = { Workload.Universe.default_config with Workload.Universe.principals };
    }
  in
  let outcome = Loadgen.run lg in
  let rss_end = Procstat.rss_kb () in
  Atomic.set stop true;
  let stats = Domain.join srv in
  let rss_peak = Procstat.peak_rss_kb () in
  match outcome with
  | Error e ->
    prerr_endline ("daemon soak: " ^ e);
    exit 2
  | Ok r ->
    (* the soak runs with the daemon's production-default tracing (1 MiB
       ring, 1% head sampling, tail keeps always) — the latency numbers
       above price that in *)
    let cval name = Metrics.value (Metrics.counter metrics name) in
    Printf.printf
      "{\"bench\":\"daemon_soak\",\"version\":\"%s\",\"host\":%s,\"requests\":%d,\"principals\":%d,\"seed\":7,\"wall_seconds\":%.3f,\"throughput_rps\":%.1f,\"latency_ms\":{\"p50\":%.3f,\"p90\":%.3f,\"p99\":%.3f,\"max\":%.3f},\"settled\":%d,\"expired\":%d,\"aborted\":%d,\"busy\":%d,\"dropped\":%d,\"cache_hits\":%d,\"rss_kb\":{\"start\":%d,\"end\":%d,\"peak\":%d},\"trace\":{\"ring_bytes\":%d,\"sample_rate\":%g,\"sampled\":%d,\"kept_tail\":%d,\"ring_dropped\":%d},\"server\":%s}\n"
      Trustseq_version.Version.v (host_json ()) requests principals r.Loadgen.wall
      r.Loadgen.throughput r.Loadgen.p50_ms r.Loadgen.p90_ms r.Loadgen.p99_ms
      r.Loadgen.max_ms r.Loadgen.settled r.Loadgen.expired r.Loadgen.aborted
      r.Loadgen.busy r.Loadgen.dropped r.Loadgen.cache_hits rss_start rss_end
      rss_peak cfg.Server.trace_ring cfg.Server.trace_sample
      (cval "obs_sessions_sampled_total")
      (cval "obs_sessions_kept_tail_total")
      (cval "obs_ring_records_dropped_total")
      (Server.stats_json stats)

(* Static-analysis cost: what the abstract interpreter
   (Trust_analyze.Static_exposure) costs when run cold on a spec shape
   versus reading the proven bound back off a warm protocol cache.
   Serve.Cache stores the analysis alongside each cached protocol, so
   a hit must be a small fraction of the cold cost — the committed
   baseline in BENCH_analyze.json pins the ratio. *)

let analyze_json () =
  let module Cache = Trust_serve.Cache in
  let module SE = Trust_analyze.Static_exposure in
  let shapes =
    [
      ("example1", Workload.Scenarios.example1);
      ("fig7", Workload.Scenarios.fig7);
      ("chain3", Workload.Gen.chain ~brokers:3);
      ("chain8", Workload.Gen.chain ~brokers:8);
      ( "fan5",
        Workload.Gen.fan ~prices:(List.init 5 (fun i -> Asset.dollars (i + 1))) );
      ("bundle3", Workload.Gen.bundle ~docs:3);
    ]
  in
  let time_ns iters f =
    let t0 = Unix.gettimeofday () in
    for _ = 1 to iters do
      ignore (Sys.opaque_identity (f ()))
    done;
    (Unix.gettimeofday () -. t0) *. 1e9 /. float_of_int iters
  in
  let cold_iters = if !quick then 50 else 200 in
  let hit_iters = cold_iters * 100 in
  let measure (name, spec) =
    let cache = Cache.create Cache.default_policy in
    let entry =
      match Cache.synthesize cache spec with
      | Ok entry, _ -> entry
      | Error e, _ ->
        Printf.eprintf "analyze bench: %s failed to synthesize: %s\n" name e;
        exit 2
    in
    (* the cold path is what a cache miss pays for the proven bound:
       full synthesis (feasibility, rescue, sequencing, scripts) plus
       the abstract interpretation of the split spec *)
    let fresh () =
      match Cache.fresh Cache.default_policy spec with
      | Ok entry -> entry
      | Error e ->
        Printf.eprintf "analyze bench: %s failed to synthesize: %s\n" name e;
        exit 2
    in
    (* warm both paths so neither prices a cold allocator *)
    ignore (time_ns 10 fresh);
    let cold = time_ns cold_iters fresh in
    let hit =
      time_ns hit_iters (fun () ->
          match Cache.synthesize cache spec with
          | Ok entry, `Hit -> entry.Cache.exposure
          | Ok _, (`Miss | `Bypass) | Error _, _ ->
            prerr_endline "analyze bench: expected a cache hit";
            exit 2)
    in
    let exposure = entry.Cache.exposure in
    let ratio = if cold > 0. then hit /. cold else 0. in
    ( Printf.sprintf
        "{\"shape\":\"%s\",\"steps\":%d,\"verdict\":\"%s\",\"cold_ns\":%.0f,\"hit_ns\":%.0f,\"hit_over_cold\":%.4f}"
        name exposure.SE.steps
        (SE.verdict_label exposure.SE.verdict)
        cold hit ratio,
      ratio )
  in
  let rows = List.map measure shapes in
  let max_ratio = List.fold_left (fun acc (_, r) -> Float.max acc r) 0. rows in
  Printf.printf
    "{\"bench\":\"analyze_static_exposure\",\"version\":\"%s\",\"host\":%s,\"cold_iters\":%d,\"hit_iters\":%d,\"max_hit_over_cold\":%.4f,\"shapes\":[%s]}\n"
    Trustseq_version.Version.v (host_json ()) cold_iters hit_iters max_ratio
    (String.concat "," (List.map fst rows))

(* Compiled hot path: the allocation-free plan runtime
   (Trust_core.Compile + Trust_sim.Hotpath) against the interpreted
   reference on the same fault-injected serve workload. Both paths run
   steady-state: the protocol cache is warmed by a full pass first, and
   the measured pass replays the identical workload against the warm
   cache — this is the daemon's regime, and it is the regime the
   compiled pipeline targets (cold synthesis costs the same on both
   paths and BENCH_analyze.json already pins it). The claim-bearing
   numbers, pinned by BENCH_hotpath.json: the sessions/sec speedup,
   identical per-session outcome digests on both paths at jobs 1 and 4
   (the compiled runtime changes no verdict, tick or event count
   anywhere), and the cache-hit minor-allocation budget the compiled
   path restores. *)

let hotpath_json () =
  let module Service = Trust_serve.Service in
  let module Session = Trust_serve.Session in
  let module Scheduler = Trust_serve.Scheduler in
  let module Cache = Trust_serve.Cache in
  let sessions = if !quick then 200 else 1000 in
  let workload () =
    Service.sessions_of_config { Service.default with Service.sessions; seed = 42L }
  in
  let digest_of batch =
    let line (s : Session.t) =
      Printf.sprintf "%d:%s:%d:%d:%d" s.Session.id
        (Session.status_label s.Session.status)
        s.Session.ticks s.Session.events s.Session.attempts
    in
    Printf.sprintf "%016Lx"
      (Trust_serve.Shape.fnv1a (String.concat "\n" (List.map line batch)))
  in
  let run ~compiled jobs =
    let cache = Cache.create ~capacity:Service.default.Service.cache_capacity Cache.default_policy in
    let cfg =
      { Scheduler.default_config with
        Scheduler.jobs;
        drop_rate = 0.02;
        seed = Trust_serve.Shape.mix64 42L;
        compiled
      }
    in
    (* warm pass: pay every cold synthesis (and plan compilation) once *)
    ignore (Scheduler.run cfg cache (workload ()));
    (* measured passes: the identical workload against the warm cache;
       best-of-3 to shed scheduler noise on small wall times *)
    let best_wall = ref infinity and digest = ref "" in
    for _ = 1 to 3 do
      let batch = workload () in
      let t0 = Unix.gettimeofday () in
      ignore (Scheduler.run cfg cache batch);
      let wall = Unix.gettimeofday () -. t0 in
      if wall < !best_wall then best_wall := wall;
      let d = digest_of batch in
      if !digest = "" then digest := d
      else if not (String.equal !digest d) then begin
        prerr_endline "hotpath bench: digest varies across repeat runs";
        exit 2
      end
    done;
    let per_sec = if !best_wall > 0. then float_of_int sessions /. !best_wall else 0. in
    (per_sec, !digest)
  in
  let interp1 = run ~compiled:false 1 in
  let interp4 = run ~compiled:false 4 in
  let comp1 = run ~compiled:true 1 in
  let comp4 = run ~compiled:true 4 in
  let digests_match =
    let d = snd interp1 in
    List.for_all (String.equal d) [ snd interp4; snd comp1; snd comp4 ]
  in
  (* steady-state minor allocation per cache-hit session on each path *)
  let words_per_session ~compiled =
    let cache = Cache.create Cache.default_policy in
    let cfg = { Scheduler.default_config with Scheduler.compiled } in
    let spec = Workload.Gen.chain ~brokers:2 in
    let run id = Scheduler.process_one cfg cache (Session.make ~id spec) in
    for id = 0 to 2 do
      run id
    done;
    let rounds = 500 in
    let before = Gc.minor_words () in
    for id = 3 to 2 + rounds do
      run id
    done;
    (Gc.minor_words () -. before) /. float_of_int rounds
  in
  let words_interp = words_per_session ~compiled:false in
  let words_comp = words_per_session ~compiled:true in
  Printf.printf
    "{\"bench\":\"hotpath\",\"version\":\"%s\",\"host\":%s,\"sessions\":%d,\"seed\":42,\"drop_rate\":0.02,\"warm_cache\":true,\"interpreted\":{\"sessions_per_sec_jobs1\":%.1f,\"sessions_per_sec_jobs4\":%.1f,\"minor_words_per_hit\":%.0f},\"compiled\":{\"sessions_per_sec_jobs1\":%.1f,\"sessions_per_sec_jobs4\":%.1f,\"minor_words_per_hit\":%.0f},\"speedup_jobs1\":%.2f,\"alloc_reduction\":%.1f,\"digests_match\":%b}\n"
    Trustseq_version.Version.v (host_json ()) sessions (fst interp1) (fst interp4) words_interp
    (fst comp1) (fst comp4) words_comp
    (if fst interp1 > 0. then fst comp1 /. fst interp1 else 0.)
    (if words_comp > 0. then words_interp /. words_comp else 0.)
    digests_match

(* Trace-mining feedback loop, end to end at the scheduler layer (the
   daemon wires the identical pieces behind --mine-every): a
   defect-heavy observation batch runs with the ring sink on and full
   sampling, the ring is dumped, decoded and mined into the per-shape
   scoreboard — byte-identical at jobs 1 and 4, which the emitter
   asserts — and the pin/deny candidates feed a policy pass: identical
   follow-up traffic runs against two fresh, deliberately small caches,
   one bare and one with denies applied and pin candidates pre-warmed
   and pinned. The claim-bearing numbers, pinned by BENCH_mine.json:
   the scoreboard jobs identity, a cache hit-rate improvement with the
   policy on, and denied shapes aborting with the TM001 diagnostic. *)

let mine_json () =
  let module Service = Trust_serve.Service in
  let module Scheduler = Trust_serve.Scheduler in
  let module Session = Trust_serve.Session in
  let module Cache = Trust_serve.Cache in
  let module Shape = Trust_serve.Shape in
  let module Ring = Trust_obs.Ring in
  let module Mine = Trust_obs.Mine in
  let sessions = if !quick then 300 else 1000 in
  let capacity = 16 in
  let observe_cfg jobs =
    {
      Service.default with
      Service.sessions;
      seed = 42L;
      jobs;
      drop_rate = 0.05;
      defect_every = Some 7;
      sample_rate = 1.0;
      trace_ring = 32 lsl 20;
      cache_capacity = capacity;
    }
  in
  let board_of jobs =
    let outcome = Service.run (observe_cfg jobs) in
    let ring =
      match outcome.Service.ring with
      | Some ring -> ring
      | None ->
        prerr_endline "mine bench: expected a ring sink";
        exit 2
    in
    match Ring.decode (Ring.dump ring) with
    | Error e ->
      prerr_endline ("mine bench: ring decode failed: " ^ e);
      exit 2
    | Ok (ss, stats) ->
      if stats.Ring.d_dropped <> 0 then begin
        prerr_endline "mine bench: observation ring wrapped; size it up";
        exit 2
      end;
      (Mine.of_sessions ss, outcome)
  in
  let board, observed = board_of 1 in
  let board4, _ = board_of 4 in
  let jobs_identical = String.equal (Mine.json board) (Mine.json board4) in
  let pins = Mine.pin_candidates ~min_incidents:2 board in
  let denies = Mine.deny_candidates ~min_violations:1 board in
  (* shape hex -> spec, from the observed workload: what the daemon's
     spec stash provides for pre-warming *)
  let spec_of = Hashtbl.create 64 in
  List.iter
    (fun (s : Session.t) ->
      let hex = Shape.hash_hex s.Session.spec in
      if not (Hashtbl.mem spec_of hex) then Hashtbl.add spec_of hex s.Session.spec)
    observed.Service.sessions;
  (* follow-up traffic: same universe, fresh seed, fresh small caches *)
  let followup () =
    Service.sessions_of_config { (observe_cfg 1) with Service.seed = 43L }
  in
  let sched_cfg =
    { Scheduler.default_config with Scheduler.drop_rate = 0.05; seed = Shape.mix64 43L }
  in
  let phase ~policy =
    let cache = Cache.create ~capacity Cache.default_policy in
    let prewarmed = ref 0 in
    if policy then begin
      List.iter (fun hex -> Cache.deny cache hex) denies;
      List.iter
        (fun hex ->
          match Hashtbl.find_opt spec_of hex with
          | Some spec -> (
            match Cache.prewarm cache spec with
            | `Hit | `Warmed -> incr prewarmed
            | `Failed _ | `Uncacheable -> ())
          | None -> ())
        pins
    end;
    let batch = followup () in
    ignore (Scheduler.run sched_cfg cache batch);
    let denied_sessions =
      List.length
        (List.filter
           (fun (s : Session.t) ->
             match s.Session.status with
             | Session.Aborted r ->
               String.length r >= 7 && String.sub r 0 7 = "denied:"
             | _ -> false)
           batch)
    in
    (Cache.hit_rate cache, denied_sessions, !prewarmed, Cache.pinned_count cache)
  in
  let hit_off, denied_off, _, _ = phase ~policy:false in
  let hit_on, denied_on, prewarmed, pinned = phase ~policy:true in
  let rows = Mine.rows board in
  let violations =
    List.fold_left (fun acc (r : Mine.row) -> acc + r.Mine.violation_sessions) 0 rows
  in
  let incidents =
    List.fold_left (fun acc (r : Mine.row) -> acc + r.Mine.retried + r.Mine.expired) 0 rows
  in
  Printf.printf
    "{\"bench\":\"mine_feedback\",\"version\":\"%s\",\"host\":%s,\"sessions\":%d,\"seed\":42,\"drop_rate\":0.05,\"defect_every\":7,\"cache_capacity\":%d,\"scoreboard\":{\"sessions\":%d,\"shapes\":%d,\"violating_sessions\":%d,\"retry_expiry_incidents\":%d,\"jobs_identical\":%b},\"policy\":{\"pin_candidates\":%d,\"deny_candidates\":%d,\"prewarmed\":%d,\"pinned\":%d},\"followup\":{\"seed\":43,\"off\":{\"cache_hit_rate\":%.4f,\"denied_sessions\":%d},\"on\":{\"cache_hit_rate\":%.4f,\"denied_sessions\":%d}},\"hit_rate_gain\":%.4f}\n"
    Trustseq_version.Version.v (host_json ()) sessions capacity (Mine.sessions board)
    (Mine.shapes board) violations incidents jobs_identical (List.length pins)
    (List.length denies) prewarmed pinned hit_off denied_off hit_on denied_on
    (hit_on -. hit_off)

(* driver *)

let experiments =
  [
    ("E1", e1);
    ("E2", e2);
    ("E3", e3);
    ("E4", e4);
    ("E5", e5);
    ("E6", e6);
    ("E7", e7);
    ("E8", e8);
    ("E9", e9);
    ("E10", e10);
    ("E11", e11);
    ("E12", e12);
  ]

let () =
  let args = Array.to_list Sys.argv in
  if List.mem "--quick" args then quick := true;
  (let rec find = function
     | "--trace" :: path :: _ -> trace_out := Some path
     | _ :: rest -> find rest
     | [] -> ()
   in
   find args);
  if List.mem "--serve-json" args then begin
    serve_json ();
    exit 0
  end;
  if List.mem "--parallel-json" args then begin
    parallel_json ();
    exit 0
  end;
  if List.mem "--obs-json" args then begin
    obs_json ();
    exit 0
  end;
  if List.mem "--daemon-json" args then begin
    daemon_json ();
    exit 0
  end;
  if List.mem "--analyze-json" args then begin
    analyze_json ();
    exit 0
  end;
  if List.mem "--hotpath-json" args then begin
    hotpath_json ();
    exit 0
  end;
  if List.mem "--mine-json" args then begin
    mine_json ();
    exit 0
  end;
  let table =
    let rec find = function
      | "--table" :: id :: _ -> Some id
      | _ :: rest -> find rest
      | [] -> None
    in
    find args
  in
  (match table with
  | Some id -> (
    match List.assoc_opt id experiments with
    | Some run -> run ()
    | None ->
      Printf.eprintf "unknown experiment %s (E1..E12)\n" id;
      exit 2)
  | None when List.mem "--bechamel" args -> ()
  | None -> List.iter (fun (_, run) -> run ()) experiments);
  if List.mem "--bechamel" args || table = None then bechamel_benches ()
