lib/workload/scenarios.ml: Action Asset Exchange List Party Printf Spec
