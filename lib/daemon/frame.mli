(** Wire framing: 4-byte big-endian length prefix, then that many
    payload bytes.

    The daemon reads from nonblocking sockets, so arrivals are
    arbitrary byte chunks — half a header, three frames at once, a
    header now and its payload next week. The {!decoder} is an
    incremental reassembler: feed it whatever [read] returned and it
    yields every complete frame, keeping the remainder buffered.

    Frames are bounded: a decoder created with [max_frame] reports any
    longer announcement as {!Oversized} and poisons itself — after a
    length field that large the stream offset is unrecoverable (this is
    also how line noise before the handshake dies: ASCII bytes read as
    a length in the hundreds of megabytes). The connection must be
    closed; the protocol answer is sent first by the daemon. *)

val default_max : int
(** 1 MiB — generous for specs, far below any length that ASCII
    garbage decodes to. *)

val encode : string -> string
(** The frame bytes for one payload: header plus payload.
    @raise Invalid_argument when the payload exceeds the representable
    length (2{^31}-1). *)

type decoder

type event =
  | Frame of string  (** one complete payload, in arrival order *)
  | Oversized of int  (** announced length; the decoder is now poisoned *)

val create : ?max_frame:int -> unit -> decoder

val feed : decoder -> bytes -> int -> event list
(** [feed d buf len] consumes [buf.[0..len)] and returns the events it
    completed, in order. A poisoned decoder returns [[]] forever. *)

val feed_string : decoder -> string -> event list

val buffered : decoder -> int
(** Bytes held waiting for a complete frame. *)

val mid_frame : decoder -> bool
(** True when a frame is partially received — a client that disconnects
    here was cut off mid-request. *)

val poisoned : decoder -> bool

(** {1 Blocking writers} — for the client side and tests; the daemon
    itself writes through its own nonblocking output buffers. *)

val write_frame : Unix.file_descr -> string -> unit
(** [encode] then write fully, retrying short writes and [EINTR]. *)
