lib/core/indemnity.mli: Action Asset Exchange Execution Format Party Spec
