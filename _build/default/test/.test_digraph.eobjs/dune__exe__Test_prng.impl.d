test/test_prng.ml: Alcotest Array Fun Int64 List QCheck2 QCheck_alcotest Workload
