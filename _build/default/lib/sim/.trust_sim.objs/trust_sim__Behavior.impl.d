lib/sim/behavior.ml: Action Asset Exchange Format Hashtbl List Party Spec String Trust_core
