(** Run assembly: from a spec (plus an optional indemnity plan) to a
    configured simulation with honest or adversarial casts. *)

open Exchange

(** How the synthesized execution sequence is turned into behaviour
    scripts. *)
type mode =
  | Lockstep
      (** the §5 semantics taken literally: the sequence is a total
          order; every action waits for its global predecessor and every
          delivery is broadcast (bulletin-board observability). A
          defector stalls everything after its withheld action, and the
          escrow deadline unwinds — this is the mode under which the
          paper's safety claim holds. *)
  | Distributed
      (** each party acts on locally observable triggers only (its own
          receipts and notifications). Cheaper and more realistic, but
          independent branches proceed concurrently, so a defection in
          one branch of a bundle can leave another branch completed —
          the paper defers a sound fully distributed protocol to future
          work (§9). *)

type cast = {
  spec : Spec.t;  (** the (possibly split) spec the run executes *)
  plan : Trust_core.Indemnity.plan option;
  mode : mode;
  protocol : Trust_core.Protocol.t;
  behaviors : Behavior.t list;
}

type defection =
  | Silent  (** never performs any action *)
  | Partial of int  (** performs only its first [n] scripted actions *)

val behaviors_for :
  ?shared:bool ->
  ?plan:Trust_core.Indemnity.plan ->
  ?defectors:(Party.t * defection) list ->
  mode:mode ->
  Spec.t ->
  Trust_core.Protocol.t ->
  Behavior.t list
(** Build fresh behaviours for one run of an already-synthesized
    protocol: scripted principals (replaced by the requested defection
    for parties listed in [defectors]) and escrow automata for every
    non-persona trusted role. The [Spec.t] argument is the {e split}
    spec the protocol was synthesized from. Behaviours are single-run
    stateful machines — callers that reuse a protocol across runs (the
    serve-layer protocol cache) must call this once per run. *)

val assemble :
  ?obs:Trust_obs.Obs.t ->
  ?parent:Trust_obs.Obs.handle ->
  ?mode:mode ->
  ?shared:bool ->
  ?plan:Trust_core.Indemnity.plan ->
  ?defectors:(Party.t * defection) list ->
  Spec.t ->
  (cast, string) result
(** Synthesize the protocol (applying the plan's splits first, with the
    escrow deposits chained in front), then build behaviours: scripted
    principals — replaced by the requested defection for parties listed
    in [defectors] — and escrow automata for every non-persona trusted
    role (atomic when the agent mediates several deals). [mode] defaults
    to [Lockstep]; [shared] enables the shared-agent reduction rule.
    [Error] when the (split) spec is infeasible. [obs]/[parent] attach a
    ["route"] span (mode, behaviour count) to a trace; the inner
    feasibility re-analysis is deliberately uninstrumented so a pipeline
    trace carries exactly one reduce span per phase. *)

val honest_run :
  ?config:Engine.config ->
  ?obs:Trust_obs.Obs.t ->
  ?parent:Trust_obs.Obs.handle ->
  ?mode:mode -> ?shared:bool -> ?plan:Trust_core.Indemnity.plan ->
  Spec.t -> (Engine.result, string) result

val adversarial_run :
  ?config:Engine.config ->
  ?obs:Trust_obs.Obs.t ->
  ?parent:Trust_obs.Obs.handle ->
  ?mode:mode ->
  ?shared:bool ->
  ?plan:Trust_core.Indemnity.plan ->
  defectors:(Party.t * defection) list ->
  Spec.t ->
  (Engine.result, string) result

val run_cast :
  ?config:Engine.config -> ?obs:Trust_obs.Obs.t -> ?parent:Trust_obs.Obs.handle -> cast ->
  Engine.result
(** Runs with the cast's mode (lockstep forces broadcast delivery).
    [obs]/[parent] attach a ["simulate"] span whose child events are the
    engine's deliver/park/retry/expire/deadline/drop timeline. *)

val universal_run :
  ?config:Engine.config ->
  ?defectors:(Party.t * defection) list ->
  Spec.t ->
  Engine.result * Spec.t
(** §8's single-coordinator protocol, bypassing the sequencing machinery
    entirely: every deal is rerouted through one fresh agent ["t*"]
    ({!Trust_core.Cost.with_universal_intermediary}); principals deposit
    everything they hold up front and re-deposit resold documents as
    they cycle through; the {!Behavior.coordinator} holds all of it
    until the whole transaction is ready, then settles. Feasible for
    every exchange problem — the §8 claim — at the cost of universal
    trust. Returns the result together with the transformed spec the
    audit should judge against. *)

val defectable_principals : Spec.t -> Party.t list
(** Principals that do not play a trusted role: the parties whose
    defection the formalism claims to protect against. A persona is
    trusted by construction, so its defection is out of scope (§4.2.3:
    trusting someone who defects is a misplaced-trust loss, not a
    protocol failure). *)

val pp_cast : Format.formatter -> cast -> unit
