type t = { rev_entries : (int option * Action.t) list }

let empty = { rev_entries = [] }
let append action t = { rev_entries = (None, action) :: t.rev_entries }
let of_actions actions = List.fold_left (fun t a -> append a t) empty actions

let of_deliveries deliveries =
  { rev_entries = List.rev_map (fun (at, action) -> (Some at, action)) deliveries }

let entries t = List.rev t.rev_entries
let actions t = List.map snd (entries t)
let length t = List.length t.rev_entries
let to_state t = State.of_actions (actions t)

type violation =
  | Undo_without_do of Action.transfer
  | Undo_before_do of Action.transfer
  | Duplicate_do of Action.transfer
  | Duplicate_undo of Action.transfer

let transfer_equal a b =
  Party.equal a.Action.source b.Action.source
  && Party.equal a.Action.target b.Action.target
  && Asset.equal a.Action.asset b.Action.asset

(* Index the Do / Undo positions of each distinct transfer. *)
let occurrences t =
  let table : (Action.transfer * (int list * int list)) list ref = ref [] in
  let record tr ~undo idx =
    let rec update = function
      | [] -> [ (tr, if undo then ([], [ idx ]) else ([ idx ], [])) ]
      | (tr', (dos, undos)) :: rest when transfer_equal tr tr' ->
        (tr', if undo then (dos, undos @ [ idx ]) else (dos @ [ idx ], undos)) :: rest
      | entry :: rest -> entry :: update rest
    in
    table := update !table
  in
  List.iteri
    (fun idx (_, action) ->
      match action with
      | Action.Do tr -> record tr ~undo:false idx
      | Action.Undo tr -> record tr ~undo:true idx
      | Action.Notify _ -> ())
    (entries t);
  !table

let well_formed t =
  let violations =
    List.concat_map
      (fun (tr, (dos, undos)) ->
        let dups =
          (if List.length dos > 1 then [ Duplicate_do tr ] else [])
          @ if List.length undos > 1 then [ Duplicate_undo tr ] else []
        in
        let pairing =
          match (dos, undos) with
          | [], _ :: _ -> [ Undo_without_do tr ]
          | do_idx :: _, undo_idx :: _ when undo_idx < do_idx -> [ Undo_before_do tr ]
          | _ -> []
        in
        dups @ pairing)
      (occurrences t)
  in
  match violations with [] -> Ok () | vs -> Error vs

let compensation_pairs t =
  List.filter_map
    (fun (tr, (dos, undos)) ->
      match (dos, undos) with
      | do_idx :: _, undo_idx :: _ when do_idx < undo_idx -> Some (tr, do_idx, undo_idx)
      | _ -> None)
    (occurrences t)

let open_transfers t =
  let opens =
    List.filter_map
      (fun (tr, (dos, undos)) ->
        match (dos, undos) with
        | do_idx :: _, [] -> Some (do_idx, tr)
        | _ -> None)
      (occurrences t)
  in
  List.map snd (List.sort (fun (a, _) (b, _) -> Int.compare a b) opens)

let compensating_tail t =
  List.rev_map (fun tr -> Action.Undo tr) (open_transfers t)

let saga_for spec ~party t =
  well_formed t = Ok () && Outcomes.acceptable spec ~party (to_state t)

let pp_violation ppf v =
  let tr_pp ppf tr = Action.pp ppf (Action.Do tr) in
  match v with
  | Undo_without_do tr -> Format.fprintf ppf "undo without do: %a" tr_pp tr
  | Undo_before_do tr -> Format.fprintf ppf "undo before do: %a" tr_pp tr
  | Duplicate_do tr -> Format.fprintf ppf "duplicate do: %a" tr_pp tr
  | Duplicate_undo tr -> Format.fprintf ppf "duplicate undo: %a" tr_pp tr

let pp ppf t =
  Format.fprintf ppf "@[<v>";
  List.iter
    (fun (at, action) ->
      match at with
      | Some at -> Format.fprintf ppf "t=%-4d %a@," at Action.pp action
      | None -> Format.fprintf ppf "       %a@," Action.pp action)
    (entries t);
  Format.fprintf ppf "@]"
