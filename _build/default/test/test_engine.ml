(* The discrete-event engine in isolation: custody accounting, parked
   sends and retries, delivery latency, broadcast observability, and the
   endowment computation. *)

open Exchange
module Engine = Trust_sim.Engine
module Behavior = Trust_sim.Behavior
module Protocol = Trust_core.Protocol

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let c = Party.consumer "c"
let p = Party.producer "p"
let t = Party.trusted "t"
let spec = Workload.Scenarios.simple_sale

let step action = Protocol.{ condition = Now; action }
let after trigger action = Protocol.{ condition = Observed trigger; action }

let run ?config behaviors = Engine.run ?config spec ~deposits:[] ~behaviors

let test_endowments () =
  let bag party = Engine.initial_endowment spec ~deposits:[] party in
  check_int "consumer holds its price" (Asset.dollars 10) (Asset.Bag.balance (bag c));
  check "producer holds its document" true (Asset.Bag.holds (Asset.document "d") (bag p));
  check_int "trusted holds nothing" 0 (Asset.Bag.balance (bag t));
  check "trusted holds no docs" false (Asset.Bag.holds (Asset.document "d") (bag t))

let test_broker_not_endowed_with_resale_doc () =
  let spec1 = Workload.Scenarios.example1 in
  let bag = Engine.initial_endowment spec1 ~deposits:[] (Party.broker "b") in
  check "broker lacks the document it resells" false
    (Asset.Bag.holds (Asset.document "d") bag);
  (* but holds the money for its purchase *)
  check_int "purchase money" (Asset.dollars 8) (Asset.Bag.balance bag)

let test_deposit_endowment () =
  let fig7 = Workload.Scenarios.fig7 in
  let plan =
    Trust_core.Indemnity.plan_greedy fig7 ~owner:Workload.Scenarios.fig7_consumer
  in
  let bag =
    Engine.initial_endowment fig7 ~deposits:plan.Trust_core.Indemnity.offers (Party.broker "b3")
  in
  (* purchase money $24 + deposit $30 *)
  check_int "deposit included" (Asset.dollars 54) (Asset.Bag.balance bag)

let test_delivery_latency () =
  let behaviors = [ Behavior.scripted c [ step (Action.pay c t (Asset.dollars 10)) ] ] in
  let result = run behaviors in
  match result.Engine.log with
  | [ d ] -> check_int "one latency tick" 1 d.Engine.at
  | _ -> Alcotest.fail "expected exactly one delivery"

let test_custody_debit_credit () =
  let behaviors =
    [
      Behavior.scripted c [ step (Action.pay c t (Asset.dollars 10)) ];
      Behavior.silent t;
    ]
  in
  let result = run behaviors in
  let holdings name = List.assoc name result.Engine.holdings in
  check_int "consumer debited" 0 (Asset.Bag.balance (holdings c));
  check_int "trusted credited" (Asset.dollars 10) (Asset.Bag.balance (holdings t))

let test_insufficient_assets_park () =
  (* c tries to pay $11 out of a $10 endowment: the send parks forever *)
  let behaviors = [ Behavior.scripted c [ step (Action.pay c t (Asset.dollars 11)) ] ] in
  let result = run behaviors in
  check_int "nothing delivered" 0 (List.length result.Engine.log);
  check_int "one stalled send" 1 (List.length result.Engine.stalled)

let test_parked_send_retries_on_credit () =
  (* p has no money endowment (it sells a document), so its send parks;
     once c's payment credits p, the parked send fires *)
  let behaviors =
    [
      Behavior.scripted p [ step (Action.pay p c (Asset.dollars 10)) ];
      Behavior.scripted c [ step (Action.pay c p (Asset.dollars 10)) ];
    ]
  in
  let result = run behaviors in
  check_int "both transfers delivered" 2 (List.length result.Engine.log);
  check_int "no stalls" 0 (List.length result.Engine.stalled)

let test_undo_moves_asset_back () =
  let tr = Action.{ source = c; target = t; asset = Asset.money (Asset.dollars 10) } in
  let behaviors =
    [
      Behavior.scripted c [ step (Action.Do tr) ];
      Behavior.scripted t [ after (Action.Do tr) (Action.Undo tr) ];
    ]
  in
  let result = run behaviors in
  let holdings name = List.assoc name result.Engine.holdings in
  check_int "consumer refunded" (Asset.dollars 10) (Asset.Bag.balance (holdings c));
  check_int "trusted empty" 0 (Asset.Bag.balance (holdings t))

let test_broadcast_observability () =
  (* under broadcast, a third party can react to a transfer it is not
     part of; without broadcast it cannot *)
  let observer_script =
    [ after (Action.pay c t (Asset.dollars 10)) (Action.give p t "d") ]
  in
  let behaviors () =
    [
      Behavior.scripted c [ step (Action.pay c t (Asset.dollars 10)) ];
      Behavior.scripted p observer_script;
    ]
  in
  let quiet = run (behaviors ()) in
  check_int "no broadcast: p never fires" 1 (List.length quiet.Engine.log);
  let config = { Engine.default_config with Engine.broadcast = true } in
  let loud = run ~config (behaviors ()) in
  check_int "broadcast: p reacts" 2 (List.length loud.Engine.log)

let test_notify_carries_no_assets () =
  let behaviors = [ Behavior.scripted t [ step (Action.notify ~agent:t ~informed:c) ] ] in
  let result = run behaviors in
  check_int "delivered" 1 (List.length result.Engine.log);
  let holdings name = List.assoc name result.Engine.holdings in
  check_int "nothing moved" 0 (Asset.Bag.balance (holdings t))

let test_max_events_bound () =
  (* two behaviours ping-ponging a document forever hit the event bound *)
  let ping = Action.give p c "d" in
  let pong = Action.give c p "d" in
  let p_behavior =
    Behavior.make p (function
      | Behavior.Start -> [ ping ]
      | Behavior.Incoming a when Action.equal a pong -> [ ping ]
      | _ -> [])
  in
  let c_behavior =
    Behavior.make c (function
      | Behavior.Incoming a when Action.equal a ping -> [ pong ]
      | _ -> [])
  in
  let config = { Engine.default_config with Engine.max_events = 50 } in
  let result = run ~config [ p_behavior; c_behavior ] in
  check_int "stopped at the bound" 50 result.Engine.events

let test_drop_returns_asset () =
  (* a dropped transfer loses the message, not the asset *)
  let config =
    { Engine.default_config with Engine.drop = Some (fun _ _ -> true) }
  in
  let behaviors = [ Behavior.scripted c [ step (Action.pay c t (Asset.dollars 10)) ] ] in
  let result = run ~config behaviors in
  check_int "nothing delivered" 0 (List.length result.Engine.log);
  check_int "consumer keeps its money" (Asset.dollars 10)
    (Asset.Bag.balance (List.assoc c result.Engine.holdings))

let test_selective_drop () =
  (* dropping only the first performed action *)
  let config =
    { Engine.default_config with Engine.drop = Some (fun seq _ -> seq = 0) }
  in
  let behaviors =
    [
      Behavior.scripted c
        [ step (Action.pay c t (Asset.dollars 4)); step (Action.pay c t (Asset.dollars 6)) ];
      Behavior.silent t;
    ]
  in
  let result = run ~config behaviors in
  check_int "second delivered" 1 (List.length result.Engine.log);
  check_int "trusted got $6" (Asset.dollars 6)
    (Asset.Bag.balance (List.assoc t result.Engine.holdings))

let () =
  Alcotest.run "engine"
    [
      ( "endowments",
        [
          Alcotest.test_case "simple sale" `Quick test_endowments;
          Alcotest.test_case "resold documents not endowed" `Quick
            test_broker_not_endowed_with_resale_doc;
          Alcotest.test_case "indemnity deposits endowed" `Quick test_deposit_endowment;
        ] );
      ( "custody and delivery",
        [
          Alcotest.test_case "latency" `Quick test_delivery_latency;
          Alcotest.test_case "debit and credit" `Quick test_custody_debit_credit;
          Alcotest.test_case "insufficient assets park" `Quick test_insufficient_assets_park;
          Alcotest.test_case "parked sends retry on credit" `Quick
            test_parked_send_retries_on_credit;
          Alcotest.test_case "undo moves assets back" `Quick test_undo_moves_asset_back;
          Alcotest.test_case "broadcast observability" `Quick test_broadcast_observability;
          Alcotest.test_case "notifications carry nothing" `Quick test_notify_carries_no_assets;
          Alcotest.test_case "event bound" `Quick test_max_events_bound;
          Alcotest.test_case "drops return assets" `Quick test_drop_returns_asset;
          Alcotest.test_case "selective drop" `Quick test_selective_drop;
        ] );
    ]
