(* trustseq — analyze, sequence, indemnify, simulate and render
   distributed-commerce exchange problems written in the trust DSL. *)

open Cmdliner
open Exchange
module Feasibility = Trust_core.Feasibility
module Reduce = Trust_core.Reduce
module Sequencing = Trust_core.Sequencing
module Execution = Trust_core.Execution
module Indemnity = Trust_core.Indemnity
module Cost = Trust_core.Cost
module Obs = Trust_obs.Obs

let version = Trustseq_version.Version.v

let load ?obs ?parent path =
  match path with
  | "-" -> Trust_lang.Elaborate.from_string ?obs ?parent ~file:"<stdin>" (In_channel.input_all stdin)
  | path -> Trust_lang.Elaborate.from_file ?obs ?parent path

(* One message for every bad format flag across trace, trace-stats,
   trace-diff and the --trace-format flags; always exit 2, before any
   pipeline work runs. *)
let invalid_format_die s valid =
  Printf.eprintf "trustseq: invalid format %S (valid formats: %s)\n" s
    (String.concat ", " valid);
  exit 2

let trace_format_or_die s =
  match Obs.format_of_string s with
  | Some fmt -> fmt
  | None -> invalid_format_die s Obs.format_names

(* Shared by `trace` and the --trace flags: render and land a trace.
   '-' means stdout — batch refuses it so the deterministic snapshot
   stays uncontaminated. Formats are parsed as plain strings, not
   [Arg.enum], so a typo gets the shared exit-2 message above instead
   of cmdliner's 124. *)
let trace_format_arg ~default doc_ctx =
  Arg.(
    value & opt string default
    & info [ "format"; "trace-format" ] ~docv:"FMT"
        ~doc:
          (Printf.sprintf
             "Trace export format for %s: $(b,jsonl) (one span/event object per line), \
              $(b,chrome) (trace-event JSON array, loadable in Perfetto or chrome://tracing), \
              $(b,tree) (human-readable span tree) or $(b,folded) (flamegraph stacks, one \
              $(i,stack self-vt) line per span). Case-insensitive."
             doc_ctx))

let land_output path rendered =
  match path with
  | "-" -> print_string rendered
  | path -> (
    try Out_channel.with_open_text path (fun oc -> Out_channel.output_string oc rendered)
    with Sys_error m ->
      prerr_endline ("trustseq: " ^ m);
      exit 2)

let write_trace fmt path traces =
  land_output path (Obs.export ~producer:("trustseq " ^ version) fmt traces)

(* The automatic indemnity rescue, merged into a single plan (the same
   folding simulate/route use). *)
let rescue_plan ?shared spec =
  match Feasibility.rescue_with_indemnities ?shared spec with
  | None -> None
  | Some r -> (
    match r.Feasibility.plans with
    | [] -> None
    | [ plan ] -> Some plan
    | plans ->
      Some
        Indemnity.
          {
            offers = List.concat_map (fun p -> p.offers) plans;
            total = Feasibility.total_indemnity r;
          })

let or_die = function
  | Ok v -> v
  | Error message ->
    prerr_endline ("trustseq: " ^ message);
    exit 2

let file_arg =
  let doc = "Exchange specification file in the trust DSL ('-' for stdin)." in
  Arg.(required & pos 0 (some string) None & info [] ~docv:"FILE" ~doc)

let party_of_spec spec name =
  match List.find_opt (fun p -> String.equal (Party.name p) name) (Spec.parties spec) with
  | Some p -> Ok p
  | None -> Error (Printf.sprintf "no party named %s in the specification" name)

(* check *)

let check_cmd =
  let run file verbose =
    let spec = or_die (load file) in
    let analysis = Feasibility.analyze spec in
    if verbose then Format.printf "%a@.@." Reduce.pp_outcome analysis.Feasibility.outcome;
    match analysis.Feasibility.outcome.Reduce.verdict with
    | Reduce.Feasible ->
      print_endline "FEASIBLE";
      0
    | Reduce.Stuck { remaining } ->
      Printf.printf "INFEASIBLE (%d edges stuck)\n" (List.length remaining);
      List.iter
        (fun owner -> Printf.printf "  blocking conjunction: %s\n" (Party.to_string owner))
        (Feasibility.blocking_conjunctions analysis);
      1
  in
  let verbose =
    Arg.(value & flag & info [ "v"; "verbose" ] ~doc:"Print the reduction deletion log.")
  in
  Cmd.v
    (Cmd.info "check"
       ~man:
         [
           `S Manpage.s_exit_status;
           `P "0 — feasible.";
           `P "1 — infeasible (reduction got stuck).";
           `P
             "2 — the file failed to load/parse/elaborate (malformed command lines get \
              cmdliner's own 124).";
         ]
       ~doc:"Decide feasibility by sequencing-graph reduction (exit 1 if stuck).")
    Term.(const run $ file_arg $ verbose)

(* lint *)

let lint_cmd =
  let module Lint = Trust_analyze.Lint in
  let module Diagnostic = Trust_analyze.Diagnostic in
  let run files format werror quick static =
    let deep = not quick in
    let static = static && not quick in
    let lint_one = function
      | "-" -> Lint.lint_source ~file:"<stdin>" ~static ~deep (In_channel.input_all stdin)
      | path -> Lint.lint_file ~static ~deep path
    in
    let diagnostics = Diagnostic.sort (List.concat_map lint_one files) in
    let rendered = Lint.render format diagnostics in
    (match format with
    | Lint.Human -> if diagnostics <> [] then print_endline rendered
    | Lint.Json | Lint.Sarif -> print_endline rendered);
    Lint.exit_status ~werror diagnostics
  in
  let files =
    Arg.(
      non_empty & pos_all string []
      & info [] ~docv:"FILE" ~doc:"Specification files to lint ('-' for stdin).")
  in
  let format =
    Arg.(
      value
      & opt (enum [ ("human", Lint.Human); ("json", Lint.Json); ("sarif", Lint.Sarif) ]) Lint.Human
      & info [ "format" ] ~docv:"FMT" ~doc:"Report format: human, json or sarif (2.1.0).")
  in
  let werror =
    Arg.(
      value & flag
      & info [ "Werror" ] ~doc:"Treat warnings as errors (info diagnostics never gate).")
  in
  let quick =
    Arg.(
      value & flag
      & info [ "quick" ]
          ~doc:
            "Structural rules only — skip the feasibility-based rules (TL006/TL007/TL009/TL012) \
             and the static exposure pass (TL015-TL017). This is what the serve admission gate \
             runs.")
  in
  let static =
    Arg.(
      value
      & opt bool true
      & info [ "static-exposure" ] ~docv:"BOOL"
          ~doc:
            "Run the static exposure pass (TL015 deadline races, TL016 unprovable single-transfer bound, \
             TL017 counterexample schedule) over the synthesized sequence. On by default; \
             $(b,--quick) skips it regardless.")
  in
  let man =
    [
      `S Manpage.s_exit_status;
      `P "0 — clean: no error-severity diagnostics (info never gates, even under --Werror).";
      `P "1 — diagnostics gated the lint: errors, or warnings under --Werror.";
      `P
        "2 — unreadable input or lex/parse failure (TL010); malformed command lines get \
         cmdliner's own 124.";
      `S "DIAGNOSTICS";
      `P "Stable codes TL001-TL017; see docs/LINT.md for the catalogue with examples.";
    ]
  in
  Cmd.v
    (Cmd.info "lint" ~man
       ~doc:
         "Lint specifications: structural smells, contradictory ordering constraints, \
          infeasibility with a minimal stuck-kernel counterexample, cross-deal conflicts, \
          static exposure bounds, and indemnity-rescue hints.")
    Term.(const run $ files $ format $ werror $ quick $ static)

(* analyze *)

let analyze_cmd =
  let module Absint = Trust_analyze.Absint in
  let module Static_exposure = Trust_analyze.Static_exposure in
  let module Conflict = Trust_analyze.Conflict in
  let module Diagnostic = Trust_analyze.Diagnostic in
  let run file =
    let spec = or_die (load file) in
    let no_loc _ = None in
    let no_loc2 _ _ = None in
    let conflicts = Conflict.structural ~deal_loc:no_loc ~split_loc:no_loc2 spec in
    let analysis = Feasibility.analyze spec in
    let conflicts =
      conflicts
      @
      match analysis.Feasibility.sequence with
      | Some seq -> Conflict.deadline_races ~deal_loc:no_loc seq
      | None -> []
    in
    let result = Static_exposure.of_analysis analysis in
    Report.Table.section (Printf.sprintf "static exposure: %s" file);
    (match result.Static_exposure.verdict with
    | Static_exposure.Vacuous ->
      print_endline "vacuous — the spec is infeasible as written; nothing runs, nothing is at risk";
      print_endline "(run `trustseq lint` for the stuck kernel and rescue hints)"
    | _ ->
      Report.Table.print
        ~header:[ "principal"; "bound"; "honest"; "worst"; "defector"; "verdict" ]
        (List.map
           (fun (i : Absint.interval) ->
             [
               Party.name i.Absint.i_party;
               Report.Table.money i.Absint.i_bound;
               Report.Table.money i.Absint.i_lo;
               Report.Table.money i.Absint.i_hi;
               (match i.Absint.i_witness.Absint.w_defector with
               | Some q -> Party.name q
               | None -> "-");
               (if Absint.proved i then "proved" else "REFUTED");
             ])
           result.Static_exposure.intervals);
      Printf.printf "\n%d steps analyzed; verdict: %s\n"
        result.Static_exposure.steps
        (Static_exposure.verdict_label result.Static_exposure.verdict);
      List.iter
        (fun (i : Absint.interval) ->
          Printf.printf "\ncounterexample for %s (%s at risk, bound %s):\n"
            (Party.name i.Absint.i_party)
            (Report.Table.money i.Absint.i_witness.Absint.w_at_risk)
            (Report.Table.money i.Absint.i_bound);
          List.iter print_endline
            (Static_exposure.schedule_notes i.Absint.i_witness))
        (Static_exposure.refuted result));
    if conflicts <> [] then begin
      print_newline ();
      Report.Table.section "cross-deal conflicts";
      print_endline (Diagnostic.render_human (Diagnostic.sort conflicts))
    end;
    if
      result.Static_exposure.verdict = Static_exposure.Refuted
      || conflicts <> []
    then 1
    else 0
  in
  Cmd.v
    (Cmd.info "analyze"
       ~man:
         [
           `S Manpage.s_exit_status;
           `P "0 — the single-transfer bound is proved for every principal and no cross-deal conflicts.";
           `P "1 — the bound was refuted (counterexample schedule printed) or conflicts were found.";
           `P "2 — the file failed to load/parse/elaborate.";
           `S "DESCRIPTION";
           `P
             "Abstract interpretation over the synthesized execution sequence: per principal, a \
              worst-case exposure interval across every legal lockstep interleaving and every \
              single-party defection pattern, checked against the paper's single-transfer bound. \
              Also reports cross-deal conflicts: double spends (TL013), over-pledged indemnities \
              (TL014) and deadline races (TL015).";
         ]
       ~doc:
         "Statically prove (or refute, with a counterexample schedule) the single-transfer \
          exposure bound, and detect cross-deal conflicts.")
    Term.(const run $ file_arg)

(* sequence *)

let sequence_cmd =
  let run file =
    let spec = or_die (load file) in
    let analysis = Feasibility.analyze spec in
    match analysis.Feasibility.sequence with
    | Some seq ->
      Format.printf "%a@." Execution.pp seq;
      0
    | None ->
      prerr_endline "trustseq: infeasible exchange, no execution sequence exists";
      1
  in
  Cmd.v
    (Cmd.info "sequence" ~doc:"Print the protective execution sequence of a feasible exchange.")
    Term.(const run $ file_arg)

(* indemnify *)

let indemnify_cmd =
  let run file owner =
    let spec = or_die (load file) in
    match owner with
    | Some name ->
      let party = or_die (party_of_spec spec name) in
      if not (Indemnity.splittable spec ~owner:party) then begin
        prerr_endline "trustseq: that conjunction cannot be split by indemnities (§6)";
        1
      end
      else begin
        let greedy = Indemnity.plan_greedy spec ~owner:party in
        let worst = Indemnity.plan_worst spec ~owner:party in
        Format.printf "%a@." Indemnity.pp_plan greedy;
        Format.printf "(worst ordering would cost %a)@." Asset.pp_money worst.Indemnity.total;
        0
      end
    | None -> (
      match Feasibility.rescue_with_indemnities spec with
      | Some rescue ->
        List.iter (fun plan -> Format.printf "%a@." Indemnity.pp_plan plan) rescue.Feasibility.plans;
        Format.printf "total indemnity: %a — exchange now FEASIBLE@." Asset.pp_money
          (Feasibility.total_indemnity rescue);
        0
      | None ->
        prerr_endline "trustseq: no indemnity plan makes this exchange feasible";
        1)
  in
  let owner =
    Arg.(
      value
      & opt (some string) None
      & info [ "owner" ] ~docv:"PARTY"
          ~doc:"Plan indemnities for this party's conjunction only (default: automatic rescue).")
  in
  Cmd.v
    (Cmd.info "indemnify" ~doc:"Compute minimal indemnities that enable an infeasible exchange.")
    Term.(const run $ file_arg $ owner)

(* simulate *)

let defection_conv =
  let parse s =
    match String.split_on_char ':' s with
    | [ name ] | [ name; "silent" ] -> Ok (name, Trust_sim.Harness.Silent)
    | [ name; mode ] -> (
      match String.split_on_char '=' mode with
      | [ "partial"; n ] -> (
        match int_of_string_opt n with
        | Some n -> Ok (name, Trust_sim.Harness.Partial n)
        | None -> Error (`Msg "partial=N needs an integer"))
      | _ -> Error (`Msg "defection is NAME[:silent|:partial=N]"))
    | _ -> Error (`Msg "defection is NAME[:silent|:partial=N]")
  in
  let print ppf (name, mode) =
    match mode with
    | Trust_sim.Harness.Silent -> Format.fprintf ppf "%s:silent" name
    | Trust_sim.Harness.Partial n -> Format.fprintf ppf "%s:partial=%d" name n
  in
  Arg.conv (parse, print)

let simulate_cmd =
  let run file defections rescue verbose trace_out trace_format =
    let trace_format = trace_format_or_die trace_format in
    let obs = match trace_out with Some _ -> Obs.create () | None -> Obs.null in
    let status =
      Obs.with_span obs ~phase:"pipeline" "trustseq.simulate" (fun root ->
          let spec = or_die (load ~obs ~parent:root file) in
          let plan = if rescue then rescue_plan spec else None in
          let defectors =
            List.map (fun (name, mode) -> (or_die (party_of_spec spec name), mode)) defections
          in
          match Trust_sim.Harness.adversarial_run ~obs ~parent:root ?plan ~defectors spec with
          | Error message ->
            prerr_endline ("trustseq: " ^ message);
            1
          | Ok result ->
            if verbose then Format.printf "%a@.@." Trust_sim.Engine.pp_result result;
            let report =
              Trust_sim.Audit.audit ~obs ~parent:root spec ?plan
                ~defectors:(List.map fst defectors) result
            in
            Format.printf "%a@." Trust_sim.Audit.pp_report report;
            if report.Trust_sim.Audit.honest_all_acceptable then 0 else 1)
    in
    Option.iter (fun path -> write_trace trace_format path [ obs ]) trace_out;
    status
  in
  let defections =
    Arg.(
      value & opt_all defection_conv []
      & info [ "defect" ] ~docv:"PARTY[:MODE]"
          ~doc:"Make a party defect: ':silent' (default) or ':partial=N'. Repeatable.")
  in
  let rescue =
    Arg.(value & flag & info [ "indemnify" ] ~doc:"Apply the automatic indemnity rescue first.")
  in
  let verbose = Arg.(value & flag & info [ "v"; "verbose" ] ~doc:"Print the delivery log.") in
  let trace_out =
    Arg.(
      value
      & opt (some string) None
      & info [ "trace" ] ~docv:"FILE"
          ~doc:
            "Record a structured trace of the whole run (parse through audit) and write it to \
             $(docv) ('-' for stdout).")
  in
  Cmd.v
    (Cmd.info "simulate"
       ~doc:"Execute the synthesized protocol in the discrete-event runtime and audit outcomes.")
    Term.(
      const run $ file_arg $ defections $ rescue $ verbose $ trace_out
      $ trace_format_arg ~default:"jsonl" "--trace")

(* render *)

let render_cmd =
  let run file kind reduced format =
    let spec = or_die (load file) in
    (match kind with
    | `Interaction -> print_string (Interaction.to_dot (Interaction.of_spec spec))
    | `Sequencing -> (
      let g = Sequencing.build spec in
      if reduced then ignore (Reduce.run g);
      match format with
      | `Dot -> print_string (Sequencing.to_dot g)
      | `Ascii -> print_string (Sequencing.to_ascii g)));
    0
  in
  let kind =
    Arg.(
      value
      & opt (enum [ ("interaction", `Interaction); ("sequencing", `Sequencing) ]) `Sequencing
      & info [ "graph" ] ~docv:"KIND" ~doc:"Which graph to render: interaction or sequencing.")
  in
  let reduced =
    Arg.(value & flag & info [ "reduced" ] ~doc:"Render the graph after reduction (Figs. 5-6).")
  in
  let format =
    Arg.(
      value
      & opt (enum [ ("dot", `Dot); ("ascii", `Ascii) ]) `Dot
      & info [ "format" ] ~docv:"FMT" ~doc:"Output format: dot (Graphviz) or ascii (terminal).")
  in
  Cmd.v
    (Cmd.info "render" ~doc:"Emit the interaction or sequencing graph as Graphviz DOT or ASCII.")
    Term.(const run $ file_arg $ kind $ reduced $ format)

(* cost *)

let cost_cmd =
  let run file =
    let spec = or_die (load file) in
    let describe label spec' =
      match (Feasibility.analyze spec').Feasibility.sequence with
      | Some seq -> (label, Format.asprintf "%a" Cost.pp_tally (Cost.tally_sequence seq))
      | None -> (label, "infeasible")
    in
    let rows =
      [
        describe "pairwise intermediaries" spec;
        describe "full direct trust" (Cost.with_all_direct_trust spec);
        ( "universal intermediary",
          Format.asprintf "%a" Cost.pp_tally (Cost.universal_tally spec) );
      ]
    in
    print_string (Report.Table.kv rows);
    0
  in
  Cmd.v
    (Cmd.info "cost" ~doc:"Compare message costs across trust regimes (paper section 8).")
    Term.(const run $ file_arg)

(* exposure *)

let exposure_cmd =
  let module Exposure = Trust_sim.Exposure in
  let run file rescue defections =
    let spec = or_die (load file) in
    let plan = if rescue then rescue_plan spec else None in
    let defectors =
      List.map (fun (name, mode) -> (or_die (party_of_spec spec name), mode)) defections
    in
    match Trust_sim.Harness.adversarial_run ?plan ~defectors spec with
    | Error message ->
      prerr_endline ("trustseq: " ^ message);
      2
    | Ok result ->
      (* the ledger, like the audit, works over the split spec — the
         accepted indemnities redefine the deals (§6) *)
      let split = match plan with Some p -> Indemnity.apply p spec | None -> spec in
      let ledger =
        Exposure.of_result ?plan ~defectors:(List.map fst defectors) split result
      in
      print_string
        (Report.Table.render
           ~header:[ "party"; "bound"; "peak at-risk"; "peak escrow"; "deposits"; "risk ticks" ]
           (List.map
              (fun (l : Exposure.party_ledger) ->
                [
                  Party.to_string l.Exposure.party;
                  Report.Table.money l.Exposure.bound;
                  Report.Table.money l.Exposure.peak_at_risk;
                  Report.Table.money l.Exposure.peak_in_escrow;
                  Report.Table.money l.Exposure.peak_deposits;
                  string_of_int l.Exposure.risk_ticks;
                ])
              ledger.Exposure.parties));
      let timeline_rows =
        List.concat_map
          (fun (l : Exposure.party_ledger) ->
            List.map
              (fun (s : Exposure.sample) ->
                ( s.Exposure.at,
                  [
                    string_of_int s.Exposure.at;
                    Party.to_string l.Exposure.party;
                    Report.Table.money s.Exposure.at_risk;
                    Report.Table.money s.Exposure.in_escrow;
                    Report.Table.money s.Exposure.deposits;
                    string_of_int s.Exposure.goods_out;
                  ] ))
              l.Exposure.timeline)
          ledger.Exposure.parties
      in
      let timeline_rows =
        (* change ticks only, chronologically, parties interleaved in
           spec order within a tick (stable sort) *)
        List.map snd (List.stable_sort (fun (a, _) (b, _) -> compare a b) timeline_rows)
      in
      if timeline_rows <> [] then begin
        print_newline ();
        print_string
          (Report.Table.render
             ~header:[ "t"; "party"; "at-risk"; "escrow"; "deposits"; "goods out" ]
             timeline_rows)
      end;
      if ledger.Exposure.agents <> [] then begin
        print_newline ();
        print_string
          (Report.Table.render
             ~header:[ "custody at"; "peak"; "final" ]
             (List.map
                (fun (a : Exposure.agent_ledger) ->
                  [
                    Party.to_string a.Exposure.agent;
                    Report.Table.money a.Exposure.peak_custody;
                    Report.Table.money a.Exposure.final_custody;
                  ])
                ledger.Exposure.agents))
      end;
      List.iter
        (fun v -> Format.printf "violation: %a@." Exposure.pp_violation v)
        ledger.Exposure.violations;
      if ledger.Exposure.violations = [] then 0 else 1
  in
  let rescue =
    Arg.(value & flag & info [ "indemnify" ] ~doc:"Apply the automatic indemnity rescue first.")
  in
  let defections =
    Arg.(
      value & opt_all defection_conv []
      & info [ "defect" ] ~docv:"PARTY[:MODE]"
          ~doc:"Make a party defect: ':silent' (default) or ':partial=N'. Repeatable.")
  in
  let man =
    [
      `S Manpage.s_description;
      `P
        "Runs the synthesized protocol and folds the delivery log into the exposure ledger: \
         per-principal peaks and timelines of at-risk value (in other principals' hands, \
         unreciprocated), escrow (custody at genuine trusted agents) and §6 indemnity \
         deposits, plus per-holder custody peaks. The §5 invariant — an honest principal's \
         at-risk value never exceeds its largest single committed transfer, and returns to \
         zero by the end of the run — is checked tick by tick.";
      `S Manpage.s_exit_status;
      `P "0 — no invariant violations (the expected result for honest feasible runs).";
      `P "1 — at least one violation (printed with its party and tick).";
      `P "2 — the file failed to load or the exchange is infeasible.";
    ]
  in
  Cmd.v
    (Cmd.info "exposure" ~man
       ~doc:"Print the exposure ledger: who was at risk, for how much, for how long.")
    Term.(const run $ file_arg $ rescue $ defections)

(* route *)

let route_cmd =
  let run file simulate =
    let src =
      match file with
      | "-" -> In_channel.input_all stdin
      | path -> (
        match In_channel.with_open_text path In_channel.input_all with
        | src -> src
        | exception Sys_error m ->
          prerr_endline ("trustseq: " ^ m);
          exit 2)
    in
    let web = or_die (Trust_lang.Elaborate.web_from_string src) in
    let module Routing = Trust_core.Routing in
    let trusts =
      List.map (fun (a, b) -> Routing.{ truster = a; trustee = b }) web.Trust_lang.Elaborate.trusts
    in
    let requests =
      List.map
        (fun (id, buyer, good, seller, price) -> Routing.{ id; buyer; seller; price; good })
        web.Trust_lang.Elaborate.requests
    in
    match Routing.connect ~relays:web.Trust_lang.Elaborate.relays ~trusts requests with
    | Error message ->
      prerr_endline ("trustseq: " ^ message);
      1
    | Ok routed ->
      List.iter
        (fun (id, route) -> Format.printf "%-10s %a@." id Routing.pp_routing route)
        routed.Routing.routes;
      print_newline ();
      print_string (Trust_lang.Printer.to_string routed.Routing.spec);
      print_newline ();
      let spec = routed.Routing.spec in
      let plan, verdict =
        if Feasibility.is_feasible ~shared:true spec then (None, "FEASIBLE")
        else
          match Feasibility.rescue_with_indemnities ~shared:true spec with
          | Some rescue ->
            let plan =
              match rescue.Feasibility.plans with
              | [ plan ] -> Some plan
              | plans ->
                Some
                  Indemnity.
                    {
                      offers = List.concat_map (fun p -> p.offers) plans;
                      total = Feasibility.total_indemnity rescue;
                    }
            in
            ( plan,
              Printf.sprintf "FEASIBLE with %s of indemnities"
                (Report.Table.money (Feasibility.total_indemnity rescue)) )
          | None -> (None, "INFEASIBLE")
      in
      (match plan with
      | Some plan -> Format.printf "%a@." Indemnity.pp_plan plan
      | None -> ());
      print_endline verdict;
      if simulate && verdict <> "INFEASIBLE" then begin
        match Trust_sim.Harness.honest_run ~shared:true ?plan spec with
        | Error message ->
          prerr_endline ("trustseq: " ^ message);
          1
        | Ok result ->
          print_newline ();
          Format.printf "%a@." Trust_sim.Audit.pp_report
            (Trust_sim.Audit.audit spec ?plan result);
          0
      end
      else if verdict = "INFEASIBLE" then 1
      else 0
  in
  let simulate =
    Arg.(value & flag & info [ "simulate" ] ~doc:"Also run the routed exchange honestly.")
  in
  Cmd.v
    (Cmd.info "route"
       ~doc:
         "Synthesize intermediaries from a trust web: a DSL file with trust edges, relay \
          brokers and requests (section 9).")
    Term.(const run $ file_arg $ simulate)

(* trace / trace-stats *)

let read_source file =
  match file with
  | "-" -> In_channel.input_all stdin
  | path -> (
    match In_channel.with_open_text path In_channel.input_all with
    | src -> src
    | exception Sys_error m ->
      prerr_endline ("trustseq: " ^ m);
      exit 2)

(* The whole pipeline — parse, elaborate, lint, reduce, route, simulate,
   verify, audit — as spans on one trace; shared by `trace` and
   `trace-stats`. *)
let traced_pipeline obs ~file src =
  Obs.with_span obs ~phase:"pipeline" "trustseq.trace" (fun root ->
      match Trust_lang.Elaborate.from_string ~obs ~parent:root ~file src with
      | Error message ->
        prerr_endline ("trustseq: " ^ message);
        2
      | Ok spec -> (
        (* every phase lands on the trace, whatever it finds *)
        ignore (Trust_analyze.Lint.check_spec ~obs ~parent:root ~file spec);
        let analysis = Feasibility.analyze ~obs ~parent:root spec in
        let plan =
          (* infeasible specs get the automatic indemnity rescue so
             the downstream phases still appear on the trace *)
          match analysis.Feasibility.outcome.Reduce.verdict with
          | Reduce.Feasible -> None
          | Reduce.Stuck _ -> rescue_plan spec
        in
        match Trust_sim.Harness.assemble ~obs ~parent:root ?plan spec with
        | Error message ->
          prerr_endline ("trustseq: " ^ message);
          1
        | Ok cast ->
          let result = Trust_sim.Harness.run_cast ~obs ~parent:root cast in
          ignore
            (Trust_analyze.Verifier.verify_spec ~obs ~parent:root
               cast.Trust_sim.Harness.spec);
          let report = Trust_sim.Audit.audit ~obs ~parent:root spec ?plan result in
          if report.Trust_sim.Audit.honest_all_acceptable then 0 else 1))

let trace_cmd =
  let run file format out =
    let format = trace_format_or_die format in
    let src = read_source file in
    let obs = Obs.create () in
    let status = traced_pipeline obs ~file src in
    write_trace format out [ obs ];
    status
  in
  let out =
    Arg.(
      value & opt string "-"
      & info [ "o"; "out" ] ~docv:"FILE" ~doc:"Write the trace to $(docv) (default stdout).")
  in
  let man =
    [
      `S Manpage.s_description;
      `P
        "Runs the whole pipeline over the specification — parse, elaborate, lint, reduce \
         (sequencing-graph reduction with its per-rule profiler), route (protocol assembly), \
         simulate, verify and audit — recording every phase as a span on one structured trace, \
         then renders the trace.";
      `P
        "All timestamps are virtual (a per-trace monotonic counter), so the output is \
         byte-identical run to run; see docs/OBS.md for the span model and determinism \
         contract.";
      `S Manpage.s_exit_status;
      `P "0 — the traced honest run audited clean.";
      `P "1 — infeasible (even after indemnity rescue) or the audit found an unacceptable outcome.";
      `P "2 — the file failed to load/parse/elaborate.";
    ]
  in
  Cmd.v
    (Cmd.info "trace" ~man
       ~doc:
         "Trace the full pipeline (parse to audit) and export spans as JSONL, Chrome JSON, a \
          tree or folded flamegraph stacks.")
    Term.(const run $ file_arg $ trace_format_arg ~default:"tree" "the trace" $ out)

(* trace-stats *)

let trace_stats_cmd =
  let module Analysis = Trust_obs.Analysis in
  let run file from_trace format out =
    let format =
      match String.lowercase_ascii format with
      | "table" -> `Table
      | "folded" -> `Folded
      | s -> invalid_format_die s [ "table"; "folded" ]
    in
    let analysis, status =
      if from_trace then
        match Analysis.of_jsonl (read_source file) with
        | Ok analysis -> (analysis, 0)
        | Error m ->
          Printf.eprintf "trustseq: %s: %s\n" file m;
          exit 2
      else begin
        let src = read_source file in
        let obs = Obs.create () in
        let status = traced_pipeline obs ~file src in
        (Analysis.of_traces [ obs ], status)
      end
    in
    let rendered =
      match format with
      | `Folded -> Analysis.folded analysis
      | `Table ->
        let buf = Buffer.create 1024 in
        Buffer.add_string buf
          (Report.Table.kv
             [
               ("spans", string_of_int (Analysis.span_count analysis));
               ("events", string_of_int (Analysis.event_count analysis));
               ("sessions", string_of_int (List.length (Analysis.sessions analysis)));
             ]);
        Buffer.add_char buf '\n';
        Buffer.add_string buf
          (Report.Table.render
             ~header:[ "phase"; "spans"; "events"; "total vt"; "self vt" ]
             (List.map
                (fun ps ->
                  [
                    ps.Analysis.ps_phase;
                    string_of_int ps.Analysis.ps_spans;
                    string_of_int ps.Analysis.ps_events;
                    string_of_int ps.Analysis.ps_total_vt;
                    string_of_int ps.Analysis.ps_self_vt;
                  ])
                (Analysis.phase_stats analysis)));
        (match Analysis.critical_path analysis with
        | [] -> ()
        | path ->
          Buffer.add_string buf "\ncritical path (longest span chain, virtual time):\n";
          List.iteri
            (fun depth st ->
              Buffer.add_string buf
                (Printf.sprintf "%s%s/%s [%d,%d) self %d\n"
                   (String.make (2 * depth + 2) ' ')
                   st.Analysis.st_phase st.Analysis.st_name st.Analysis.st_start
                   st.Analysis.st_stop st.Analysis.st_self))
            path);
        Buffer.contents buf
    in
    land_output out rendered;
    status
  in
  let from_trace =
    Arg.(
      value & flag
      & info [ "from-trace" ]
          ~doc:
            "Treat $(i,FILE) as a JSONL trace export (from $(b,trace --format jsonl) or \
             $(b,batch --trace)) instead of a specification to run.")
  in
  let format =
    Arg.(
      value & opt string "table"
      & info [ "format" ] ~docv:"FMT"
          ~doc:
            "Output format: $(b,table) (per-phase statistics and the critical path) or \
             $(b,folded) (flamegraph stacks, one $(i,stack self-vt) line per span). \
             Case-insensitive.")
  in
  let out =
    Arg.(
      value & opt string "-"
      & info [ "o"; "out" ] ~docv:"FILE" ~doc:"Write the analysis to $(docv) (default stdout).")
  in
  let man =
    [
      `S Manpage.s_description;
      `P
        "Runs the same traced pipeline as $(b,trustseq trace) (or re-parses an existing JSONL \
         export with $(b,--from-trace)) and prints span analytics: per-phase span/event counts \
         and total/self virtual time, the critical path, or folded stacks ready for \
         $(b,flamegraph.pl) / speedscope.";
      `P
        "All statistics are in virtual time, so the output is byte-identical run to run and at \
         any $(b,batch --jobs).";
      `S Manpage.s_exit_status;
      `P "0 — analysis printed (with --from-trace, the export parsed).";
      `P "1 — the traced run was infeasible or audited unacceptably (stats still printed).";
      `P "2 — unreadable input, malformed JSONL, or an invalid --format/--out.";
    ]
  in
  Cmd.v
    (Cmd.info "trace-stats" ~man
       ~doc:"Analyse a traced pipeline run: per-phase statistics, critical path, flamegraph stacks.")
    Term.(const run $ file_arg $ from_trace $ format $ out)

(* trace-diff *)

let trace_diff_cmd =
  let module Analysis = Trust_obs.Analysis in
  let run left right out =
    if left = "-" && right = "-" then begin
      prerr_endline "trustseq: only one of the two traces can come from stdin";
      exit 2
    end;
    let parse path =
      match Analysis.of_jsonl (read_source path) with
      | Ok analysis -> analysis
      | Error m ->
        Printf.eprintf "trustseq: %s: %s\n" path m;
        exit 2
    in
    let diff = Analysis.diff (parse left) (parse right) in
    land_output out (Analysis.render_diff diff);
    if diff = [] then 0 else 1
  in
  let left =
    Arg.(
      required & pos 0 (some string) None
      & info [] ~docv:"A" ~doc:"First JSONL trace export ('-' for stdin).")
  in
  let right =
    Arg.(
      required & pos 1 (some string) None
      & info [] ~docv:"B" ~doc:"Second JSONL trace export ('-' for stdin).")
  in
  let out =
    Arg.(
      value & opt string "-"
      & info [ "o"; "out" ] ~docv:"FILE" ~doc:"Write the diff to $(docv) (default stdout).")
  in
  let man =
    [
      `S Manpage.s_description;
      `P
        "Compares two JSONL trace exports structurally. Spans are matched by session and by \
         their name path from the root (plus an occurrence index), so renumbered span ids \
         alone produce no noise; differing phases, virtual-time ranges, attributes or events \
         are reported per span, one line each ($(b,-) only in A, $(b,+) only in B, $(b,~) \
         changed).";
      `S Manpage.s_exit_status;
      `P "0 — structurally identical (empty diff).";
      `P "1 — the traces differ.";
      `P "2 — unreadable input, malformed JSONL, or an invalid --out.";
    ]
  in
  Cmd.v
    (Cmd.info "trace-diff" ~man ~doc:"Structurally diff two JSONL trace exports.")
    Term.(const run $ left $ right $ out)

(* trace-decode *)

let trace_decode_cmd =
  let module Ring = Trust_obs.Ring in
  let module Client = Trust_daemon.Client in
  let run file connect timeout format out =
    let format = trace_format_or_die format in
    let dump =
      match (connect, file) with
      | Some _, Some _ ->
        prerr_endline "trustseq: trace-decode takes a dump FILE or --connect, not both";
        exit 2
      | None, None ->
        prerr_endline "trustseq: trace-decode needs a dump FILE or --connect ADDR";
        exit 2
      | Some addr, None -> (
        match Client.connect ~timeout addr with
        | Error e ->
          prerr_endline ("trustseq: " ^ e);
          exit 2
        | Ok client ->
          let dump = Client.trace client ~id:1 in
          Client.close client;
          (match dump with
          | Ok dump -> dump
          | Error e ->
            prerr_endline ("trustseq: " ^ e);
            exit 2))
      | None, Some "-" -> In_channel.input_all stdin
      | None, Some path -> (
        try In_channel.with_open_bin path In_channel.input_all
        with Sys_error m ->
          prerr_endline ("trustseq: " ^ m);
          exit 2)
    in
    match Ring.decode dump with
    | Error m ->
      prerr_endline ("trustseq: " ^ m);
      exit 2
    | Ok (sessions, stats) ->
      land_output out (Ring.export ~producer:("trustseq " ^ version) format sessions);
      (* the keep tally is the operator's first question — why is each
         of these sessions here? — so it rides on stderr with the rest
         of the annotations *)
      let tally = Hashtbl.create 8 in
      List.iter
        (fun (s : Ring.session) ->
          let k = Ring.keep_label s.Ring.s_keep in
          Hashtbl.replace tally k (1 + Option.value ~default:0 (Hashtbl.find_opt tally k)))
        sessions;
      let kept =
        String.concat ", "
          (List.filter_map
             (fun k ->
               Option.map (Printf.sprintf "%s %d" k) (Hashtbl.find_opt tally k))
             [ "sampled"; "violation"; "retry"; "expiry"; "lint" ])
      in
      let drop_ratio =
        if stats.Ring.d_written = 0 then 0.
        else float_of_int stats.Ring.d_dropped /. float_of_int stats.Ring.d_written
      in
      Printf.eprintf
        "trace-decode: %d sessions (%s) from %d shards, %d records written, %d dropped (%.1f%% drop ratio)\n"
        stats.Ring.d_sessions
        (if kept = "" then "none kept" else kept)
        stats.Ring.d_shards stats.Ring.d_written stats.Ring.d_dropped (100. *. drop_ratio);
      (* ring pressure is otherwise invisible: eviction on wrap is
         silent by design, so say explicitly when the
         newest-complete-suffix decode had to discard wrapped sessions
         (grow --trace-ring or lower --trace-sample if this matters) *)
      if stats.Ring.d_skipped > 0 then
        Printf.eprintf
          "trace-decode: warning: %d wrapped session%s discarded (ring evicted their oldest records); consider a larger ring or a lower sample rate\n"
          stats.Ring.d_skipped
          (if stats.Ring.d_skipped = 1 then "" else "s");
      0
  in
  let file =
    Arg.(
      value & pos 0 (some string) None
      & info [] ~docv:"FILE"
          ~doc:
            "Binary ring dump ('-' for stdin) — from $(b,batch --ring-dump-out) or a daemon's \
             $(b,trace) wire frame.")
  in
  let connect =
    Arg.(
      value
      & opt (some string) None
      & info [ "connect" ] ~docv:"ADDR"
          ~doc:
            "Drain a live daemon's trace ring instead of reading a file: $(b,unix:PATH), \
             $(b,tcp:HOST:PORT), or a bare socket path. Each drain returns the records kept \
             since the previous one.")
  in
  let timeout =
    Arg.(
      value & opt float 10.
      & info [ "timeout" ] ~docv:"SECONDS" ~doc:"Receive timeout for --connect.")
  in
  let out =
    Arg.(
      value & opt string "-"
      & info [ "o"; "out" ] ~docv:"FILE" ~doc:"Write the rendered trace to $(docv) (default stdout).")
  in
  let man =
    [
      `S Manpage.s_description;
      `P
        "Decodes the compact binary record stream of the production trace ring \
         (docs/OBS.md, \"Production tracing\") and re-renders it through the standard \
         exporters — the output is byte-compatible with what $(b,batch --trace) or \
         $(b,trace) would have produced for the same sessions, so it pipes straight into \
         $(b,trace-stats --from-trace -) and $(b,trace-diff). Sessions decode sorted by id \
         (a canonical order whatever --jobs produced them); a session whose start record \
         was evicted on wrap is skipped whole — dumps always parse as the newest complete \
         suffix of what was recorded.";
      `P
        "A one-line summary lands on stderr: session count by keep reason (head-sampled vs \
         tail-promoted violation/retry/expiry/lint), shard count, and the ring's lifetime \
         written/dropped record counters with the drop ratio. When the decode had to discard \
         wrapped sessions (their oldest records were evicted), a warning says how many — \
         that is the signal to grow $(b,--trace-ring) or lower the sample rate.";
      `S Manpage.s_exit_status;
      `P "0 — decoded and rendered.";
      `P "2 — unreadable input, a corrupt dump, connection failure, or bad flags.";
    ]
  in
  Cmd.v
    (Cmd.info "trace-decode" ~man
       ~doc:"Decode a binary trace-ring dump (file or live daemon) into any trace export format.")
    Term.(const run $ file $ connect $ timeout $ trace_format_arg ~default:"jsonl" "the decoded trace" $ out)

(* mine *)

let mine_cmd =
  let module Ring = Trust_obs.Ring in
  let module Mine = Trust_obs.Mine in
  let module Analysis = Trust_obs.Analysis in
  let module Client = Trust_daemon.Client in
  let run file connect from_trace timeout json pin deny out =
    let die msg =
      prerr_endline ("trustseq: " ^ msg);
      exit 2
    in
    let read_bin = function
      | "-" -> In_channel.input_all stdin
      | path -> (
        try In_channel.with_open_bin path In_channel.input_all
        with Sys_error m -> die m)
    in
    let of_dump dump =
      match Ring.decode dump with Error m -> die m | Ok (sessions, _) -> Mine.of_sessions sessions
    in
    let board =
      match (file, connect, from_trace) with
      | Some _, Some _, _ | Some _, _, Some _ | None, Some _, Some _ ->
        die "mine takes exactly one input: a dump FILE, --connect, or --from-trace"
      | None, None, None ->
        die "mine needs a ring dump FILE ('-' for stdin), --connect ADDR, or --from-trace FILE"
      | Some path, None, None -> of_dump (read_bin path)
      | None, Some addr, None -> (
        match Client.connect ~timeout addr with
        | Error e -> die e
        | Ok client ->
          let dump = Client.trace client ~id:1 in
          Client.close client;
          (match dump with Ok dump -> of_dump dump | Error e -> die e))
      | None, None, Some path -> (
        match Analysis.of_jsonl (read_bin path) with
        | Error m -> die m
        | Ok a -> Mine.of_views (Analysis.views a))
    in
    let rendered =
      if json then Mine.json board ^ "\n"
      else begin
        let candidates label = function
          | [] -> Printf.sprintf "%s: none\n" label
          | shapes -> Printf.sprintf "%s: %s\n" label (String.concat " " shapes)
        in
        Mine.table board
        ^ candidates (Printf.sprintf "pin candidates (>= %d incidents)" pin)
            (Mine.pin_candidates ~min_incidents:pin board)
        ^ candidates (Printf.sprintf "deny candidates (>= %d violating sessions)" deny)
            (Mine.deny_candidates ~min_violations:deny board)
      end
    in
    land_output out rendered;
    Printf.eprintf "mine: %d sessions over %d shapes\n" (Mine.sessions board)
      (Mine.shapes board);
    0
  in
  let file =
    Arg.(
      value & pos 0 (some string) None
      & info [] ~docv:"FILE"
          ~doc:
            "Binary ring dump ('-' for stdin) — from $(b,batch --ring-dump-out) or a daemon's \
             $(b,trace) wire frame.")
  in
  let connect =
    Arg.(
      value
      & opt (some string) None
      & info [ "connect" ] ~docv:"ADDR"
          ~doc:
            "Drain a live daemon's trace ring and mine that window: $(b,unix:PATH), \
             $(b,tcp:HOST:PORT), or a bare socket path.")
  in
  let from_trace =
    Arg.(
      value
      & opt (some string) None
      & info [ "from-trace" ] ~docv:"FILE"
          ~doc:
            "Mine a JSONL trace export ('-' for stdin) instead of a binary dump — e.g. a \
             daemon's --trace sink or $(b,trace-decode) output. The scoreboard is \
             byte-identical to mining the dump the JSONL was decoded from.")
  in
  let timeout =
    Arg.(
      value & opt float 10.
      & info [ "timeout" ] ~docv:"SECONDS" ~doc:"Receive timeout for --connect.")
  in
  let json =
    Arg.(
      value & flag
      & info [ "json" ]
          ~doc:"Emit the canonical one-line scoreboard JSON instead of the table rendering.")
  in
  let pin =
    Arg.(
      value & opt int 2
      & info [ "pin" ] ~docv:"N"
          ~doc:
            "List shapes with at least $(docv) retry/expiry incidents (and no violations) as \
             pin candidates.")
  in
  let deny =
    Arg.(
      value & opt int 1
      & info [ "deny" ] ~docv:"N"
          ~doc:"List shapes with at least $(docv) violating sessions as deny candidates.")
  in
  let out =
    Arg.(
      value & opt string "-"
      & info [ "o"; "out" ] ~docv:"FILE" ~doc:"Write the scoreboard to $(docv) (default stdout).")
  in
  let man =
    [
      `S Manpage.s_description;
      `P
        "Folds kept sessions — the trace ring's tail-retained anomalies plus the head-sampled \
         baseline — into a per-shape incident scoreboard: keep reasons, retry/expiry rates, §5 \
         exposure violations and per-phase self-time, keyed by the canonical FNV spec shape \
         hash the protocol cache uses. This is the offline face of the daemon's \
         $(b,--mine-every) feedback loop (docs/OBS.md, \"Trace mining\"): the same scoreboard \
         the daemon folds live, so policy decisions are reproducible from a dump.";
      `P
        "Everything is a pure function of the decoded span views: the scoreboard is \
         byte-identical whether the sessions came from a file, a live drain or a re-parsed \
         JSONL export, and whatever --jobs produced them.";
      `S Manpage.s_exit_status;
      `P "0 — mined and rendered.";
      `P "2 — unreadable input, a corrupt dump, connection failure, or bad flags.";
    ]
  in
  Cmd.v
    (Cmd.info "mine" ~man
       ~doc:
         "Mine a trace-ring dump (file, live daemon, or JSONL export) into the per-shape \
          incident scoreboard that drives cache pinning and admission denial.")
    Term.(const run $ file $ connect $ from_trace $ timeout $ json $ pin $ deny $ out)

(* batch *)

let batch_cmd =
  let run sessions seed concurrency jobs mode density drop_rate defect_every no_rescue verify
      no_compiled json out trace_out trace_format trace_sample trace_ring ring_out debug_gauges =
    let module Service = Trust_serve.Service in
    let module Ring = Trust_obs.Ring in
    let trace_format = trace_format_or_die trace_format in
    if sessions < 0 then (
      prerr_endline "trustseq: --sessions must be non-negative";
      exit 2);
    if concurrency < 1 then (
      prerr_endline "trustseq: --concurrency must be at least 1";
      exit 2);
    if jobs < 1 then (
      prerr_endline "trustseq: --jobs must be at least 1";
      exit 2);
    if drop_rate < 0. || drop_rate > 1. then (
      prerr_endline "trustseq: --drop-rate must lie in [0, 1]";
      exit 2);
    (match defect_every with
    | Some n when n < 1 ->
      prerr_endline "trustseq: --defect-every must be at least 1";
      exit 2
    | _ -> ());
    (* The standard-streams rule (README "Standard streams"): at most
       one output may claim stdout. The snapshot defaults to stdout, so
       a stdout trace needs the snapshot redirected with --out. *)
    (match (trace_out, out) with
    | Some "-", "-" ->
      prerr_endline
        "trustseq: at most one output may claim stdout: batch --trace - needs --out FILE";
      exit 2
    | _ -> ());
    if trace_sample < 0. || trace_sample > 1. then (
      prerr_endline "trustseq: --trace-sample must lie in [0, 1]";
      exit 2);
    if trace_ring < 0 then (
      prerr_endline "trustseq: --trace-ring must be non-negative";
      exit 2);
    (* a binary ring dump is never a terminal artifact — refuse '-' *)
    (match ring_out with
    | Some "-" ->
      prerr_endline "trustseq: --ring-dump-out needs a file path, not '-'";
      exit 2
    | _ -> ());
    (* asking for a dump implies a ring; default to 1 MiB like serve *)
    let trace_ring =
      match ring_out with Some _ when trace_ring = 0 -> 1 lsl 20 | _ -> trace_ring
    in
    let config =
      {
        Service.default with
        Service.sessions;
        seed = Int64.of_int seed;
        concurrency;
        jobs;
        mode;
        mix = { Workload.Gen.default_mix with Workload.Gen.trust_density = density };
        rescue = not no_rescue;
        verify_cache = verify;
        drop_rate;
        defect_every;
        trace = trace_out <> None;
        compiled = not no_compiled;
        sample_rate = trace_sample;
        trace_ring;
      }
    in
    let outcome = Service.run config in
    land_output out
      (if json then Service.json outcome
       else Format.asprintf "%a" Service.report outcome);
    Option.iter
      (fun path -> write_trace trace_format path (Obs.batch_traces outcome.Service.obs))
      trace_out;
    (match (ring_out, outcome.Service.ring) with
    | Some path, Some ring -> (
      try Out_channel.with_open_bin path (fun oc -> Out_channel.output_string oc (Ring.dump ring))
      with Sys_error m ->
        prerr_endline ("trustseq: " ^ m);
        exit 2)
    | _ -> ());
    (* wall-clock throughput goes to stderr so stdout stays a
       byte-identical snapshot across runs with the same seed, at any
       --jobs; the scheduling-dependent pool gauges are noisier still
       and stay opt-in *)
    prerr_endline (Service.wall_line outcome);
    if debug_gauges then
      prerr_string (Trust_serve.Metrics.volatile_text outcome.Service.metrics);
    0
  in
  let sessions =
    Arg.(
      value & opt int 100
      & info [ "sessions" ] ~docv:"N" ~doc:"How many exchange sessions to generate and run.")
  in
  let seed =
    Arg.(value & opt int 42 & info [ "seed" ] ~docv:"SEED" ~doc:"Workload PRNG seed.")
  in
  let concurrency =
    Arg.(
      value & opt int 8
      & info [ "concurrency" ] ~docv:"LANES" ~doc:"Virtual scheduler lanes (bounded concurrency).")
  in
  let jobs =
    Arg.(
      value & opt int 1
      & info [ "jobs" ] ~docv:"N"
          ~doc:
            "Worker domains executing sessions in parallel. The snapshot (verdicts, traces, \
             metrics, makespan) is bit-for-bit identical at any value; only wall-clock time and \
             the serve_pool_* gauges change.")
  in
  let mode =
    Arg.(
      value
      & opt
          (enum
             [
               ("lockstep", Trust_sim.Harness.Lockstep);
               ("distributed", Trust_sim.Harness.Distributed);
             ])
          Trust_sim.Harness.Lockstep
      & info [ "mode" ] ~docv:"MODE" ~doc:"Protocol mode: lockstep (paper-sound) or distributed.")
  in
  let density =
    Arg.(
      value
      & opt float Workload.Gen.default_mix.Workload.Gen.trust_density
      & info [ "trust-density" ] ~docv:"P" ~doc:"Direct-trust probability per generated deal.")
  in
  let drop_rate =
    Arg.(
      value & opt float 0.
      & info [ "drop-rate" ] ~docv:"P"
          ~doc:"Per-delivery drop probability on first attempts (retried once without drops).")
  in
  let defect_every =
    Arg.(
      value
      & opt (some int) None
      & info [ "defect-every" ] ~docv:"N" ~doc:"Make every N-th session's first principal defect.")
  in
  let no_rescue =
    Arg.(value & flag & info [ "no-rescue" ] ~doc:"Do not rescue infeasible specs with indemnities.")
  in
  let verify =
    Arg.(
      value & flag
      & info [ "verify-cache" ]
          ~doc:"Re-synthesize on every cache hit and fail loudly on divergence.")
  in
  let no_compiled =
    Arg.(
      value & flag
      & info [ "no-compiled" ]
          ~doc:
            "Run every session on the interpreted reference engine instead of executing cached \
             compiled plans on the allocation-free runtime. The snapshot is bit-for-bit identical \
             either way; only wall-clock time changes.")
  in
  let json = Arg.(value & flag & info [ "json" ] ~doc:"Emit the snapshot as JSON.") in
  let out =
    Arg.(
      value & opt string "-"
      & info [ "o"; "out" ] ~docv:"FILE"
          ~doc:
            "Write the deterministic snapshot to $(docv) (default stdout). Required (non-'-') \
             when --trace also wants stdout — at most one output may claim it.")
  in
  let trace_out =
    Arg.(
      value
      & opt (some string) None
      & info [ "trace" ] ~docv:"FILE"
          ~doc:
            "Record one structured trace per session and write them all to $(docv) ('-' for \
             stdout, only with --out FILE). Span sets are byte-identical at any --jobs (see \
             docs/OBS.md).")
  in
  let trace_sample =
    Arg.(
      value & opt float 1.0
      & info [ "trace-sample" ] ~docv:"RATE"
          ~doc:
            "Head-sample this fraction of sessions into live traces (deterministic per seed and \
             session id; the sampled set at rate r is a subset of the set at any higher rate). \
             Unsampled sessions run untraced on the compiled fast path; tail keep rules still \
             promote any session with an exposure violation, retry, expiry or lint refusal. \
             Applies when --trace or a ring is active.")
  in
  let trace_ring =
    Arg.(
      value & opt int 0
      & info [ "trace-ring" ] ~docv:"BYTES"
          ~doc:
            "Also commit kept sessions into a binary ring sink of $(docv) capacity (one shard \
             per worker domain). 0 (default) disables the ring; see --ring-dump-out.")
  in
  let ring_out =
    Arg.(
      value
      & opt (some string) None
      & info [ "ring-dump-out" ] ~docv:"FILE"
          ~doc:
            "Write the binary ring dump to $(docv) after the batch (implies a 1 MiB ring if \
             --trace-ring is unset). Decode it with $(b,trustseq trace-decode).")
  in
  let debug_gauges =
    Arg.(
      value & flag
      & info [ "debug-gauges" ]
          ~doc:
            "Print the volatile serve_pool_* gauges (queue high-water mark, wait counts) to \
             stderr. They depend on OS scheduling, not the seed, so they are off by default and \
             never part of the snapshot.")
  in
  Cmd.v
    (Cmd.info "batch"
       ~doc:
         "Run a generated multi-session workload through the concurrent exchange service \
          (protocol cache + batch scheduler) and print a deterministic metrics report.")
    Term.(
      const run $ sessions $ seed $ concurrency $ jobs $ mode $ density $ drop_rate $ defect_every
      $ no_rescue $ verify $ no_compiled $ json $ out $ trace_out
      $ trace_format_arg ~default:"jsonl" "--trace" $ trace_sample $ trace_ring $ ring_out
      $ debug_gauges)

(* serve / submit / loadgen — the daemon and its clients *)

let tcp_conv =
  let parse s =
    match String.rindex_opt s ':' with
    | None -> Error (`Msg "tcp listener is HOST:PORT")
    | Some i -> (
      let host = String.sub s 0 i in
      match int_of_string_opt (String.sub s (i + 1) (String.length s - i - 1)) with
      | Some port when port > 0 && port < 65536 -> Ok (host, port)
      | Some _ | None -> Error (`Msg "tcp listener needs a port in [1, 65535]"))
  in
  Arg.conv (parse, fun ppf (h, p) -> Format.fprintf ppf "%s:%d" h p)

let connect_arg =
  Arg.(
    value
    & opt string "unix:/tmp/trustseq.sock"
    & info [ "connect" ] ~docv:"ADDR"
        ~doc:
          "Daemon address: $(b,unix:PATH), $(b,tcp:HOST:PORT), or a bare Unix-socket path \
           (default unix:/tmp/trustseq.sock).")

let serve_cmd =
  let module Server = Trust_daemon.Server in
  let run socket tcp max_pending cache_capacity epoch_every max_idle deadline latency mode
      no_rescue verify metrics_out trace_out trace_ring trace_sample mine_every mine_pin
      mine_deny defect_every drop_rate =
    if socket = None && tcp = None then begin
      prerr_endline "trustseq: serve needs --socket PATH and/or --tcp HOST:PORT";
      exit 2
    end;
    if max_pending < 0 then (
      prerr_endline "trustseq: --max-pending must be non-negative";
      exit 2);
    if cache_capacity < 1 then (
      prerr_endline "trustseq: --cache-capacity must be at least 1";
      exit 2);
    if epoch_every < 0 then (
      prerr_endline "trustseq: --epoch-every must be non-negative (0 disables aging)";
      exit 2);
    if max_idle < 1 then (
      prerr_endline "trustseq: --max-idle-epochs must be at least 1";
      exit 2);
    (match trace_out with
    | Some "-" ->
      (* the same standard-streams rule as batch: the daemon's stderr
         carries its status lines, stdout stays silent, and the trace
         stream is appended per request — it needs a real file *)
      prerr_endline "trustseq: serve --trace needs a file path, not '-'";
      exit 2
    | _ -> ());
    if trace_ring < 0 then (
      prerr_endline "trustseq: --trace-ring must be non-negative";
      exit 2);
    if trace_sample < 0. || trace_sample > 1. then (
      prerr_endline "trustseq: --trace-sample must lie in [0, 1]";
      exit 2);
    if mine_every < 0 || mine_pin < 0 || mine_deny < 0 || defect_every < 0 then (
      prerr_endline "trustseq: --mine-every/--mine-pin/--mine-deny/--defect-every must be non-negative";
      exit 2);
    if mine_every > 0 && trace_ring = 0 then (
      prerr_endline "trustseq: --mine-every needs a live trace ring (--trace-ring > 0)";
      exit 2);
    if drop_rate < 0. || drop_rate >= 1. then (
      prerr_endline "trustseq: --drop-rate must lie in [0, 1)";
      exit 2);
    let config =
      {
        Server.default with
        Server.unix_path = socket;
        tcp;
        policy =
          {
            Trust_serve.Cache.default_policy with
            Trust_serve.Cache.mode;
            rescue = not no_rescue;
            verify;
          };
        cache_capacity;
        scheduler =
          {
            Trust_serve.Scheduler.default_config with
            Trust_serve.Scheduler.session_deadline = deadline;
            latency;
            drop_rate;
          };
        max_pending;
        epoch_every;
        max_idle_epochs = max_idle;
        snapshot_path = metrics_out;
        trace_path = trace_out;
        trace_ring;
        trace_sample;
        mine_every;
        mine_pin;
        mine_deny;
        defect_every;
        banner = "trustseq " ^ version;
      }
    in
    let stop = Atomic.make false in
    let handler = Sys.Signal_handle (fun _ -> Atomic.set stop true) in
    Sys.set_signal Sys.sigterm handler;
    Sys.set_signal Sys.sigint handler;
    List.iter
      (fun l -> prerr_endline ("trustseq serve: listening on " ^ l))
      ((match socket with Some p -> [ "unix:" ^ p ] | None -> [])
      @ match tcp with Some (h, p) -> [ Printf.sprintf "tcp:%s:%d" h p ] | None -> []);
    let stats = Server.run ~stop config in
    prerr_endline ("trustseq serve: drained " ^ Server.stats_json stats);
    if stats.Server.drained then 0 else 1
  in
  let socket =
    Arg.(
      value
      & opt (some string) None
      & info [ "socket" ] ~docv:"PATH" ~doc:"Listen on this Unix socket (created, then unlinked on exit).")
  in
  let tcp =
    Arg.(
      value
      & opt (some tcp_conv) None
      & info [ "tcp" ] ~docv:"HOST:PORT" ~doc:"Also (or instead) listen on TCP.")
  in
  let max_pending =
    Arg.(
      value & opt int 64
      & info [ "max-pending" ] ~docv:"N"
          ~doc:
            "Admission bound: submissions queued beyond $(docv) in one poll round are answered \
             $(b,busy) instead of buffered (0 bounces everything).")
  in
  let cache_capacity =
    Arg.(
      value & opt int 4096
      & info [ "cache-capacity" ] ~docv:"N" ~doc:"Protocol-cache resident-entry bound.")
  in
  let epoch_every =
    Arg.(
      value & opt int 256
      & info [ "epoch-every" ] ~docv:"N"
          ~doc:
            "Advance the cache epoch every $(docv) served requests, sweeping idle entries and \
             rewriting --metrics-out (0 disables aging).")
  in
  let max_idle =
    Arg.(
      value & opt int 2
      & info [ "max-idle-epochs" ] ~docv:"N"
          ~doc:"Sweep cache entries untouched for $(docv) whole epochs.")
  in
  let deadline =
    Arg.(
      value & opt int 1000
      & info [ "deadline" ] ~docv:"TICKS" ~doc:"Per-session engine escrow deadline.")
  in
  let latency =
    Arg.(value & opt int 1 & info [ "latency" ] ~docv:"TICKS" ~doc:"Engine delivery latency.")
  in
  let mode =
    Arg.(
      value
      & opt
          (enum
             [
               ("lockstep", Trust_sim.Harness.Lockstep);
               ("distributed", Trust_sim.Harness.Distributed);
             ])
          Trust_sim.Harness.Lockstep
      & info [ "mode" ] ~docv:"MODE" ~doc:"Protocol mode: lockstep (paper-sound) or distributed.")
  in
  let no_rescue =
    Arg.(value & flag & info [ "no-rescue" ] ~doc:"Do not rescue infeasible specs with indemnities.")
  in
  let verify =
    Arg.(
      value & flag
      & info [ "verify-cache" ]
          ~doc:"Re-synthesize on every cache hit and fail loudly on divergence.")
  in
  let metrics_out =
    Arg.(
      value
      & opt (some string) None
      & info [ "metrics-out" ] ~docv:"FILE"
          ~doc:
            "Rewrite the deterministic metrics exposition here (atomic rename) at every epoch \
             tick and on drain.")
  in
  let trace_out =
    Arg.(
      value
      & opt (some string) None
      & info [ "trace" ] ~docv:"FILE"
          ~doc:
            "Append every kept request trace (head-sampled per --trace-sample, plus every \
             tail-promoted anomaly) as JSONL (a daemon.request root span) to $(docv).")
  in
  let trace_ring =
    Arg.(
      value
      & opt int Server.default.Server.trace_ring
      & info [ "trace-ring" ] ~docv:"BYTES"
          ~doc:
            "Capacity of the live binary trace ring, drained by the $(b,trace) wire request \
             (and $(b,trustseq trace-decode --connect)). Default 1 MiB; 0 disables the ring — \
             and with no --trace file, tracing entirely.")
  in
  let trace_sample =
    Arg.(
      value
      & opt float Server.default.Server.trace_sample
      & info [ "trace-sample" ] ~docv:"RATE"
          ~doc:
            "Head-sample this fraction of requests into live traces (deterministic in the \
             scheduler seed and session id). Unsampled requests run untraced on the compiled \
             fast path; tail keep rules still promote every session that closes with an \
             exposure violation, retry, expiry or lint refusal. Default 0.01.")
  in
  let mine_every =
    Arg.(
      value
      & opt int Server.default.Server.mine_every
      & info [ "mine-every" ] ~docv:"N"
          ~doc:
            "Every $(docv) served requests, self-drain the trace ring, fold the kept sessions \
             into the trace-mining scoreboard and apply the feedback policy below (pin, \
             pre-warm, deny). Needs --trace-ring > 0. Default 0 (the loop is off).")
  in
  let mine_pin =
    Arg.(
      value
      & opt int Server.default.Server.mine_pin
      & info [ "mine-pin" ] ~docv:"N"
          ~doc:
            "Pin (and pre-warm when evicted) cache entries for shapes with at least $(docv) \
             retry or expiry incidents on the scoreboard and no exposure violations; pinned \
             entries are exempt from FIFO eviction and epoch aging. 0 disables. Default 2.")
  in
  let mine_deny =
    Arg.(
      value
      & opt int Server.default.Server.mine_deny
      & info [ "mine-deny" ] ~docv:"N"
          ~doc:
            "Deny-list shapes whose kept sessions include at least $(docv) exposure-violating \
             runs; further submissions of a denied shape are answered $(b,refused) with the \
             $(b,TM001) diagnostic. 0 disables. Default 1.")
  in
  let defect_every =
    Arg.(
      value
      & opt int Server.default.Server.defect_every
      & info [ "defect-every" ] ~docv:"N"
          ~doc:
            "Fault injection for smokes and soaks: every $(docv)-th session's first defectable \
             principal goes silent (the same knob batch --defect-every turns). Default 0 (no \
             injection).")
  in
  let drop_rate =
    Arg.(
      value
      & opt float Trust_serve.Scheduler.default_config.Trust_serve.Scheduler.drop_rate
      & info [ "drop-rate" ] ~docv:"RATE"
          ~doc:
            "Per-delivery message-drop probability on each session's first run (retries rerun \
             clean), exercising the retry path. Default 0.")
  in
  let man =
    [
      `S Manpage.s_description;
      `P
        "Runs the long-lived exchange service: spec submissions arrive over a length-prefixed \
         JSON wire protocol (docs/DAEMON.md), each runs the same lifecycle as a batch session — \
         admission lint, cached synthesis, engine run, audit — and the verdict travels back \
         with the session's exposure tallies. Admission control answers $(b,busy) past \
         --max-pending; the protocol cache ages by epochs so the Zipf long tail is swept while \
         heavy hitters stay warm.";
      `P
        "Tracing is always on at production cost: 1% of requests are head-sampled into a 1 MiB \
         binary ring (tail keep rules promote every anomalous session regardless of the rate), \
         drained live over the wire by $(b,trustseq trace-decode --connect ADDR). Tune with \
         --trace-ring / --trace-sample; add --trace FILE for a durable JSONL sink of every \
         kept session.";
      `P
        "With --mine-every N the daemon closes the loop on its own telemetry: every N served \
         requests it drains the ring, folds the kept sessions into the $(b,trustseq mine) \
         scoreboard, pins and pre-warms chronically retried or expiring shapes (--mine-pin) \
         and deny-lists shapes observed violating the \xC2\xA75 exposure bound (--mine-deny; refused \
         submissions carry the TM001 diagnostic). Progress shows up in the obs_mine_* \
         counters and the serve_cache_pinned / serve_admission_denied_total metrics.";
      `P
        "SIGTERM or SIGINT drains gracefully: stop accepting, finish everything admitted, \
         flush responses, write the final --metrics-out snapshot, exit 0.";
      `S Manpage.s_exit_status;
      `P "0 — clean drain after SIGTERM/SIGINT.";
      `P "1 — the event loop exited without draining (internal error).";
      `P "2 — bad flags (no listener, invalid bounds).";
    ]
  in
  Cmd.v
    (Cmd.info "serve" ~man
       ~doc:
         "Run the exchange daemon: wire-protocol submissions, admission control, epoch-aged \
          protocol cache, graceful drain.")
    Term.(
      const run $ socket $ tcp $ max_pending $ cache_capacity $ epoch_every $ max_idle $ deadline
      $ latency $ mode $ no_rescue $ verify $ metrics_out $ trace_out $ trace_ring $ trace_sample
      $ mine_every $ mine_pin $ mine_deny $ defect_every $ drop_rate)

let submit_cmd =
  let module Client = Trust_daemon.Client in
  let module Wire = Trust_daemon.Wire in
  let run file connect timeout quiet =
    let src = read_source file in
    let die msg =
      prerr_endline ("trustseq: " ^ msg);
      exit 2
    in
    match Client.connect ~timeout connect with
    | Error e -> die e
    | Ok client -> (
      let resp = Client.submit client ~id:1 ~spec:src in
      Client.close client;
      match resp with
      | Error e -> die e
      | Ok (Wire.Busy _) -> die "server busy (admission bound reached); retry later"
      | Ok (Wire.Refused { reason; _ }) -> die ("refused: " ^ reason)
      | Ok (Wire.Welcome _ | Wire.Pong _ | Wire.Text _) ->
        die "unexpected response to submit"
      | Ok
          (Wire.Result
            {
              status;
              exit_code;
              cache_hit;
              ticks;
              events;
              attempts;
              exposure_peak;
              exposure_ticks;
              exposure_violations;
              reason;
              _;
            }) ->
        if not quiet then begin
          print_string
            (Report.Table.kv
               [
                 ("status", status);
                 ("cache", (if cache_hit then "hit" else "miss"));
                 ("attempts", string_of_int attempts);
                 ("ticks", string_of_int ticks);
                 ("events", string_of_int events);
                 ( "exposure",
                   Printf.sprintf "peak %s, %d risk ticks, %d violations"
                     (Report.Table.money exposure_peak)
                     exposure_ticks exposure_violations );
               ]);
          Option.iter (fun reason -> Printf.printf "reason: %s\n" reason) reason
        end;
        exit_code)
  in
  let timeout =
    Arg.(
      value & opt float 30.
      & info [ "timeout" ] ~docv:"SECONDS" ~doc:"Receive timeout per response.")
  in
  let quiet =
    Arg.(value & flag & info [ "q"; "quiet" ] ~doc:"No output; the exit code is the verdict.")
  in
  let man =
    [
      `S Manpage.s_exit_status;
      `P "0 — the session settled (every party reached its preferred outcome).";
      `P "1 — the session expired or aborted (defection, infeasible spec).";
      `P "2 — transport or protocol failure: no daemon, busy, refused, parse error.";
    ]
  in
  Cmd.v
    (Cmd.info "submit" ~man
       ~doc:
         "Submit one specification to a running daemon over the wire protocol and report its \
          verdict (same exit contract as check/simulate).")
    Term.(const run $ file_arg $ connect_arg $ timeout $ quiet)

let loadgen_cmd =
  let module Loadgen = Trust_daemon.Loadgen in
  let module Universe = Workload.Universe in
  let run connect requests profile principals seed zipf_consumers zipf_brokers templates
      template_share busy_retries json =
    if requests < 1 then (
      prerr_endline "trustseq: --requests must be at least 1";
      exit 2);
    (* the profile picks the base universe; explicit knobs override it *)
    let base =
      match profile with
      | `Default -> Universe.default_config
      | `Defect_heavy -> Universe.defect_heavy
    in
    let templates = Option.value templates ~default:base.Universe.templates in
    let template_share =
      Option.value template_share ~default:base.Universe.template_share
    in
    if template_share < 0. || template_share > 1. then (
      prerr_endline "trustseq: --template-share must lie in [0, 1]";
      exit 2);
    let universe =
      {
        base with
        Universe.principals;
        s_consumers = zipf_consumers;
        s_brokers = zipf_brokers;
        templates;
        template_share;
      }
    in
    let cfg =
      {
        Loadgen.connect;
        requests;
        universe;
        seed = Int64.of_int seed;
        busy_retries;
      }
    in
    match Loadgen.run cfg with
    | exception Invalid_argument m ->
      prerr_endline ("trustseq: " ^ m);
      exit 2
    | Error e ->
      prerr_endline ("trustseq: " ^ e);
      exit 2
    | Ok report ->
      if json then print_endline (Loadgen.json report) else print_string (Loadgen.table report);
      if report.Loadgen.dropped > 0 then 1 else 0
  in
  let requests =
    Arg.(value & opt int 1000 & info [ "requests" ] ~docv:"N" ~doc:"Submissions to send.")
  in
  let principals =
    Arg.(
      value
      & opt int Universe.default_config.Universe.principals
      & info [ "principals" ] ~docv:"N"
          ~doc:"Synthetic principal universe size (default one million).")
  in
  let seed =
    Arg.(value & opt int 1 & info [ "seed" ] ~docv:"SEED" ~doc:"Workload PRNG seed.")
  in
  let zipf_consumers =
    Arg.(
      value
      & opt float Universe.default_config.Universe.s_consumers
      & info [ "zipf-consumers" ] ~docv:"S" ~doc:"Consumer popularity exponent (long tail).")
  in
  let zipf_brokers =
    Arg.(
      value
      & opt float Universe.default_config.Universe.s_brokers
      & info [ "zipf-brokers" ] ~docv:"S" ~doc:"Broker/agent popularity exponent (heavy hitters).")
  in
  let profile =
    Arg.(
      value
      & opt (enum [ ("default", `Default); ("defect-heavy", `Defect_heavy) ]) `Default
      & info [ "profile" ] ~docv:"NAME"
          ~doc:
            "Universe profile: $(b,default) (million-principal marketplace) or \
             $(b,defect-heavy) (hot 64-template catalog, deep chains, wide fans — the traffic \
             that feeds the daemon's --mine-every loop under fault injection). Explicit knobs \
             below override the profile.")
  in
  let templates =
    Arg.(
      value
      & opt (some int) None
      & info [ "templates" ] ~docv:"N"
          ~doc:"Catalog template count (0 disables replays; default from --profile).")
  in
  let template_share =
    Arg.(
      value
      & opt (some float) None
      & info [ "template-share" ] ~docv:"P"
          ~doc:
            "Fraction of traffic replaying catalog templates (cache-hot; default from \
             --profile).")
  in
  let busy_retries =
    Arg.(
      value & opt int 25
      & info [ "busy-retries" ] ~docv:"N" ~doc:"Retries per request after a busy answer.")
  in
  let json = Arg.(value & flag & info [ "json" ] ~doc:"Emit the report as one JSON line.") in
  let man =
    [
      `S Manpage.s_description;
      `P
        "Drives a running daemon with deterministic Zipf-distributed traffic over a synthetic \
         principal universe: heavy-hitter brokers, a long tail of consumers, and an optional \
         catalog-template slice that repeats byte-identical specs to exercise the protocol \
         cache. Latencies are wall-clock and belong in benchmarks, not snapshots.";
      `S Manpage.s_exit_status;
      `P "0 — every request got a result.";
      `P "1 — some requests were dropped after exhausting --busy-retries.";
      `P "2 — transport failure or invalid flags.";
    ]
  in
  Cmd.v
    (Cmd.info "loadgen" ~man
       ~doc:
         "Generate Zipf-distributed load against a running daemon and report throughput and \
          latency percentiles.")
    Term.(
      const run $ connect_arg $ requests $ profile $ principals $ seed $ zipf_consumers
      $ zipf_brokers $ templates $ template_share $ busy_retries $ json)

(* petri *)

let petri_cmd =
  let run file =
    let spec = or_die (load file) in
    let enc = Petri.Encode.of_spec spec in
    let verdict, stats = Petri.Encode.feasible enc in
    Printf.printf "petri verdict: %s (states explored: %d)\n"
      (match verdict with
      | `Feasible -> "FEASIBLE"
      | `Infeasible -> "INFEASIBLE"
      | `Unknown -> "UNKNOWN (bound hit)")
      stats.Petri.Analysis.explored;
    Printf.printf "graph reduction: %s\n"
      (if Feasibility.is_feasible spec then "FEASIBLE" else "INFEASIBLE");
    0
  in
  Cmd.v
    (Cmd.info "petri"
       ~doc:"Cross-check feasibility against the exhaustive Petri-net baseline (section 7.4).")
    Term.(const run $ file_arg)

let main_cmd =
  let doc = "trust-explicit distributed commerce transactions (Ketchpel & Garcia-Molina, ICDCS'96)" in
  Cmd.group
    (Cmd.info "trustseq" ~version ~doc)
    [ check_cmd; lint_cmd; analyze_cmd; sequence_cmd; indemnify_cmd; simulate_cmd; render_cmd; cost_cmd; route_cmd; exposure_cmd; petri_cmd; batch_cmd; serve_cmd; submit_cmd; loadgen_cmd; trace_cmd; trace_stats_cmd; trace_diff_cmd; trace_decode_cmd; mine_cmd ]

let () = exit (Cmd.eval' main_cmd)
