lib/exchange/state.ml: Action Asset Format List Party Set
