(* Prometheus exposition-format conformance for Metrics.dump: HELP/TYPE
   lines, sorted families, cumulative histogram _bucket/_sum/_count
   triplets, and the volatile quarantine. The parser below is
   deliberately independent of the renderer: it re-derives the family
   structure from the text alone. *)

module Metrics = Trust_serve.Metrics
module Service = Trust_serve.Service

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let check_string = Alcotest.(check string)

let contains haystack needle =
  let n = String.length haystack and k = String.length needle in
  let rec at i = i + k <= n && (String.sub haystack i k = needle || at (i + 1)) in
  at 0

(* A parsed exposition: comment directives and samples, in order. *)
type line =
  | Help of string
  | Type of string * string  (* family, kind *)
  | Sample of string * string option * float  (* name, le label, value *)

let parse_line l =
  if l = "" then None
  else if String.length l >= 7 && String.sub l 0 7 = "# HELP " then
    let rest = String.sub l 7 (String.length l - 7) in
    Some (Help (List.hd (String.split_on_char ' ' rest)))
  else if String.length l >= 7 && String.sub l 0 7 = "# TYPE " then
    match String.split_on_char ' ' (String.sub l 7 (String.length l - 7)) with
    | [ family; kind ] -> Some (Type (family, kind))
    | _ -> Alcotest.fail ("malformed TYPE line: " ^ l)
  else
    match String.index_opt l ' ' with
    | None -> Alcotest.fail ("malformed sample line: " ^ l)
    | Some sp ->
      let name_part = String.sub l 0 sp in
      let value =
        match float_of_string_opt (String.sub l (sp + 1) (String.length l - sp - 1)) with
        | Some v -> v
        | None -> Alcotest.fail ("unparseable sample value: " ^ l)
      in
      (match String.index_opt name_part '{' with
      | None -> Some (Sample (name_part, None, value))
      | Some b ->
        let name = String.sub name_part 0 b in
        let label = String.sub name_part b (String.length name_part - b) in
        (* the only label the registry emits is le="..." *)
        let prefix = "{le=\"" in
        if String.length label < String.length prefix + 2
           || String.sub label 0 (String.length prefix) <> prefix
        then Alcotest.fail ("unexpected label set: " ^ l)
        else
          let le =
            String.sub label (String.length prefix)
              (String.length label - String.length prefix - 2)
          in
          Some (Sample (name, Some le, value)))

let parse text = List.filter_map parse_line (String.split_on_char '\n' text)

(* The family a sample belongs to: strip histogram suffixes. *)
let family_of name =
  let strip suffix =
    let k = String.length suffix and n = String.length name in
    if n > k && String.sub name (n - k) k = suffix then Some (String.sub name 0 (n - k))
    else None
  in
  match (strip "_bucket", strip "_sum", strip "_count") with
  | Some f, _, _ | _, Some f, _ | _, _, Some f -> f
  | None, None, None -> name

(* Every sample must be preceded by exactly one TYPE directive for its
   family, and the declared kind must match the sample shape. *)
let check_typed lines =
  let types = Hashtbl.create 16 in
  List.iter
    (function
      | Type (family, kind) ->
        check ("single TYPE for " ^ family) false (Hashtbl.mem types family);
        check ("known kind for " ^ family) true
          (List.mem kind [ "counter"; "gauge"; "histogram" ]);
        Hashtbl.add types family kind
      | Help _ -> ()
      | Sample (name, le, _) -> (
        let family = family_of name in
        match Hashtbl.find_opt types family with
        | None -> Alcotest.fail ("sample before TYPE: " ^ name)
        | Some kind ->
          if le <> None || name <> family then
            check_string ("histogram-shaped sample " ^ name) "histogram" kind))
    lines;
  types

let check_sorted lines =
  let families =
    List.filter_map (function Type (family, _) -> Some family | _ -> None) lines
  in
  check "families sorted by name" true (List.sort String.compare families = families)

(* _bucket series cumulative and ending at +Inf, _count = +Inf bucket,
   _sum present — per histogram family. *)
let check_histograms lines types =
  Hashtbl.iter
    (fun family kind ->
      if kind = "histogram" then begin
        let buckets =
          List.filter_map
            (function
              | Sample (name, Some le, v) when name = family ^ "_bucket" -> Some (le, v)
              | _ -> None)
            lines
        in
        check (family ^ " has buckets") true (buckets <> []);
        check_string (family ^ " last bucket is +Inf") "+Inf" (fst (List.nth buckets (List.length buckets - 1)));
        ignore
          (List.fold_left
             (fun prev (_, v) ->
               check (family ^ " buckets cumulative") true (v >= prev);
               v)
             0. buckets);
        let scalar suffix =
          match
            List.filter_map
              (function
                | Sample (name, None, v) when name = family ^ suffix -> Some v
                | _ -> None)
              lines
          with
          | [ v ] -> v
          | _ -> Alcotest.fail (family ^ suffix ^ " missing or duplicated")
        in
        let count = scalar "_count" and _sum = scalar "_sum" in
        check (family ^ "_count equals the +Inf bucket") true
          (count = snd (List.nth buckets (List.length buckets - 1)))
      end)
    types

let conformance text =
  let lines = parse text in
  let types = check_typed lines in
  check_sorted lines;
  check_histograms lines types

(* a hand-built registry covering all three kinds plus a volatile gauge *)
let synthetic () =
  let m = Metrics.create () in
  let c = Metrics.counter m ~help:"things done" "test_things_total" in
  Metrics.incr ~by:3 c;
  let h = Metrics.histogram m ~help:"sizes" ~buckets:[ 1; 5; 10 ] "test_sizes" in
  List.iter (Metrics.observe h) [ 0; 2; 7; 20; 5 ];
  Metrics.gauge m ~help:"level" "test_level" 2.5;
  Metrics.gauge m ~help:"noise" ~volatile:true "test_noise" 9.;
  m

let test_synthetic_conformance () =
  let m = synthetic () in
  conformance (Metrics.dump m);
  check_string "dump aliases to_text" (Metrics.to_text m) (Metrics.dump m);
  check "volatile gauge quarantined from the dump" false (contains (Metrics.dump m) "test_noise");
  check "volatile gauge on the volatile channel" true
    (contains (Metrics.volatile_text m) "test_noise");
  check "deterministic gauge not on the volatile channel" false
    (contains (Metrics.volatile_text m) "test_level")

let test_synthetic_histogram_values () =
  (* observations 0,2,5 land in le<=1/le<=5; 7 in le<=10; 20 in +Inf *)
  let m = synthetic () in
  let lines = parse (Metrics.dump m) in
  let bucket le =
    match
      List.filter_map
        (function
          | Sample ("test_sizes_bucket", Some l, v) when l = le -> Some v | _ -> None)
        lines
    with
    | [ v ] -> int_of_float v
    | _ -> Alcotest.fail ("bucket " ^ le ^ " missing")
  in
  check_int "le=1" 1 (bucket "1");
  check_int "le=5" 3 (bucket "5");
  check_int "le=10" 4 (bucket "10");
  check_int "le=+Inf" 5 (bucket "+Inf")

(* the real serve registry, end to end *)
let test_batch_conformance () =
  let outcome =
    Service.run { Service.default with Service.sessions = 40; seed = 3L; jobs = 2 }
  in
  let dump = Metrics.dump outcome.Service.metrics in
  conformance dump;
  check "counter family present" true (contains dump "# TYPE serve_sessions_total counter");
  check "histogram family present" true (contains dump "# TYPE serve_session_ticks histogram");
  check "gauge family present" true (contains dump "# TYPE serve_cache_hit_rate gauge");
  check "volatile pool gauges quarantined" false (contains dump "serve_pool_queue_peak")

(* the daemon registry: the epoch-aging families must be registered and
   conformant even on an idle server (stop set before the first round) *)
let test_daemon_registry_conforms () =
  let module Server = Trust_daemon.Server in
  let m = Metrics.create () in
  let stop = Atomic.make true in
  let path = Printf.sprintf "/tmp/trustseq-metrics-%d.sock" (Unix.getpid ()) in
  let stats = Server.run ~stop ~metrics:m { Server.default with Server.unix_path = Some path } in
  check "drains immediately" true stats.Server.drained;
  let dump = Metrics.dump m in
  conformance dump;
  check "request counter family" true (contains dump "# TYPE daemon_requests_total counter");
  check "busy counter family" true (contains dump "# TYPE daemon_busy_total counter");
  check "aged-out counter family" true
    (contains dump "# TYPE serve_cache_aged_out_total counter");
  check "epoch gauge family" true (contains dump "# TYPE serve_cache_epoch gauge");
  check "cache size gauge family" true (contains dump "# TYPE serve_cache_size gauge")

let () =
  Alcotest.run "metrics"
    [
      ( "exposition",
        [
          Alcotest.test_case "synthetic registry conforms" `Quick test_synthetic_conformance;
          Alcotest.test_case "histogram buckets cumulative" `Quick test_synthetic_histogram_values;
          Alcotest.test_case "batch registry conforms" `Quick test_batch_conformance;
          Alcotest.test_case "daemon registry conforms" `Quick test_daemon_registry_conforms;
        ] );
    ]
