(** Interaction graphs (paper §3): the bipartite graph [I = (P, T, E)]
    of principals, trusted components, and the edges between a principal
    and the intermediary it uses for one side of an exchange.

    Built from a {!Spec.t}; node identifiers are stable across calls so
    renders and tests can refer to them. *)

type t

val of_spec : Spec.t -> t

val spec : t -> Spec.t
val graph : t -> Trust_graph.Digraph.t
(** The underlying graph. Edges are directed principal -> trusted for
    determinism but the interaction graph is conceptually undirected. *)

val node_of_party : t -> Party.t -> int
(** @raise Not_found for parties outside the spec. *)

val party_of_node : t -> int -> Party.t
val edge_of_commitment : t -> Spec.commitment_ref -> int * int
(** The (principal node, trusted node) pair of a commitment. *)

val degree : t -> Party.t -> int
(** Number of interaction edges incident to the party. *)

val internal_nodes : t -> Party.t list
(** Parties with degree two or more — these induce conjunction nodes in
    the sequencing graph (§4.1). *)

val is_bipartite : t -> bool
(** Always [true] for graphs built by {!of_spec}; exposed so property
    tests can assert the §3 invariant. *)

val to_dot : t -> string
(** Graphviz rendering in the paper's style: principals as circles,
    trusted components as squares. *)

val pp : Format.formatter -> t -> unit
