(** Generated acceptable-state specifications (paper §2.3, §3.1).

    The paper enumerates each party's acceptable final states by hand.
    This module derives them from a {!Spec.t}, mirroring the §3.1
    enumeration: status quo; completion; refund back-outs; windfalls;
    and, for deals split off a conjunction by an indemnity (§6), the
    refund-plus-indemnity-payout outcome.

    Two equivalent interfaces are provided. {!descriptions} materialises
    an explicit {!State.acceptability} — faithful to the paper but
    exponential in the number of deals a party participates in.
    {!acceptable} evaluates the same predicate structurally in
    polynomial time; a property test in the suite checks they agree. *)

(** Classification of one principal's view of one deal in a final
    state. *)
type deal_outcome =
  | Nothing  (** no transfer of this deal touched the principal *)
  | Complete  (** sent its item and received the counterpart *)
  | Refunded  (** sent its item and got it back *)
  | Windfall  (** received the counterpart without sending *)
  | Indemnified
      (** split deal only: sent, got it back, and received an indemnity
          payout covering the other pieces (§6) *)
  | Loss  (** anything else: the principal is out an asset *)

val classify :
  Spec.t -> party:Party.t -> Spec.commitment_ref -> State.t -> deal_outcome

val acceptable : Spec.t -> party:Party.t -> State.t -> bool
(** Structural acceptability. For a principal: every deal outcome is
    loss-free, and within the party's (unsplit) conjunction either every
    deal delivered its item ([Complete]/[Windfall]) or none did
    ([Nothing]/[Refunded]/[Windfall]) — the all-or-nothing reading of
    conjunction nodes (§3.2, §4.1). Split deals are judged
    independently, with [Refunded] alone unacceptable ([Indemnified] is
    required): the indemnity is what made the split sound. For a trusted
    component: it must end as a pure conduit — everything received was
    either forwarded or returned (net holdings zero, §2.5).

    When the spec carries an acceptability override for the party, the
    override is consulted instead. *)

val no_loss : Spec.t -> party:Party.t -> State.t -> bool
(** The item-level half of {!acceptable}: no deal of the party ended in
    [Loss] and no extraneous outgoing transfer went uncompensated — but
    neither the all-or-nothing bundle constraint nor the
    indemnity-payout promise on split pieces is enforced. This is the §1
    "never risks losing money or goods" guarantee that escrow mechanics
    enforce unconditionally; ending with the {e whole} bundle
    additionally needs every committed party to follow through, or an
    indemnity on the at-risk pieces (§6). *)

val preferred_reached : Spec.t -> party:Party.t -> State.t -> bool
(** Every deal of the party is [Complete] (or the override's preferred
    description is satisfied). *)

val descriptions : ?max_size:int -> Spec.t -> Party.t -> State.acceptability
(** Explicit §2.3-style description sets. [max_size] (default [20_000])
    bounds the number of descriptions generated.
    @raise Invalid_argument when the bound would be exceeded — use
    {!acceptable} for such parties. *)

val pp_deal_outcome : Format.formatter -> deal_outcome -> unit
