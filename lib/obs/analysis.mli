(** Trace analytics over {!Obs} span views: per-phase statistics,
    critical-path extraction, folded (flamegraph) stacks, and a
    structural diff between two traces.

    Everything here is a pure function of span views, so the results
    inherit the tracing layer's determinism contract: byte-identical
    across runs and across [--jobs], and identical whether the views
    come from an in-memory trace ({!of_traces}) or from a re-parsed
    JSONL export ({!of_jsonl}). *)

type t
(** An analysed trace set: span views in session-then-creation order. *)

val of_views : Obs.span_view list -> t

val views : t -> Obs.span_view list
(** The held views back, in their canonical order. *)

val of_traces : Obs.t list -> t
(** Null sinks contribute nothing, order is preserved. *)

val of_jsonl : string -> (t, string) result
(** Re-parse a JSONL export ({!Obs.export} [Jsonl]). Accepts exactly
    the shapes the exporter emits ([meta] lines are ignored); the error
    carries the 1-based line number of the first offending line. *)

val span_count : t -> int
val event_count : t -> int
val sessions : t -> int list
(** Distinct session ids, ascending. *)

(** {2 Per-phase statistics} *)

type phase_stat = {
  ps_phase : string;
  ps_spans : int;
  ps_events : int;
  ps_total_vt : int;  (** summed span durations (virtual time) *)
  ps_self_vt : int;  (** summed durations minus child-span durations *)
}

val phase_stats : t -> phase_stat list
(** One row per phase, sorted by phase name. Unfinished spans count as
    zero duration. *)

(** {2 Critical path} *)

type path_step = {
  st_phase : string;
  st_name : string;
  st_start : int;
  st_stop : int;
  st_self : int;
}

val critical_path : t -> path_step list
(** Root-to-leaf chain of maximal virtual duration: the longest root
    span (earliest wins ties), then at every level the longest child.
    [[]] for an empty trace set. *)

(** {2 Folded stacks}  *)

val folded : t -> string
(** {!Obs.render_folded} over the held views. *)

(** {2 Structural diff} *)

type diff_entry =
  | Only_left of string  (** span path present only in the first trace *)
  | Only_right of string  (** span path present only in the second *)
  | Changed of string * string  (** path, human description of the change *)

val diff : t -> t -> diff_entry list
(** Compare two trace sets structurally. Spans are keyed by [session] +
    the [/]-joined name path from their root + an occurrence index, so
    reordered ids alone do not produce noise; differing phase, vt
    range, attrs or events are reported per key. [[]] iff the two
    exports are structurally identical. Deterministic order: sorted by
    session, then path. *)

val render_diff : diff_entry list -> string
(** One line per entry ([- path …], [+ path …], [~ path …]); [""] for
    the empty diff. *)
