lib/core/execution.ml: Action Array Asset Exchange Format Hashtbl List Option Outcomes Party Reduce Sequencing Spec State Trust_graph
