(* The §9 extensions, end to end: a web of trust instead of pre-chosen
   intermediaries. Alice lives in the "bank" trust domain, the two
   publishers in the "notary" and "vault" domains; nobody shares an
   agent with her. Routing synthesizes relay chains through brokers that
   bridge domains, a shared agent coordinates an all-or-nothing bundle
   atomically (Rule #3), and a tight per-deal deadline shows partial
   exchanges expiring safely.

     dune exec examples/trust_web.exe
*)

open Exchange
module Routing = Trust_core.Routing
module Feasibility = Trust_core.Feasibility

let rule () = print_endline (String.make 72 '-')

let alice = Party.consumer "alice"
let textco = Party.producer "textco"
let mapco = Party.producer "mapco"
let carol = Party.broker "carol"
let dora = Party.broker "dora"
let erin = Party.broker "erin"
let bank = Party.trusted "bank"
let notary = Party.trusted "notary"
let vault = Party.trusted "vault"

(* Two bank-to-notary bridge brokers (carol, dora) so the router can
   spread the two resale chains — one broker carrying both would be the
   poor-broker impasse. *)
let trusts =
  Routing.mutual alice bank
  @ Routing.mutual carol bank @ Routing.mutual carol notary
  @ Routing.mutual dora bank @ Routing.mutual dora notary
  @ Routing.mutual textco notary
  @ Routing.mutual erin notary @ Routing.mutual erin vault
  @ Routing.mutual mapco vault
  (* mapco also trusts erin personally: a §4.2.3 direct-trust edge *)
  @ [ Routing.{ truster = mapco; trustee = erin } ]

let () =
  print_endline "the trust web:";
  print_newline ();
  List.iter
    (fun e ->
      Printf.printf "  %s trusts %s\n"
        (Party.name e.Routing.truster)
        (Party.name e.Routing.trustee))
    trusts;
  rule ();
  let requests =
    [
      Routing.{ id = "text"; buyer = alice; seller = textco; price = Asset.dollars 12; good = "atlas-text" };
      Routing.{ id = "maps"; buyer = alice; seller = mapco; price = Asset.dollars 18; good = "atlas-maps" };
    ]
  in
  match
    Routing.connect ~relays:[ carol; dora; erin ] ~markup:(Asset.dollars 1) ~trusts requests
  with
  | Error e -> print_endline ("routing failed: " ^ e)
  | Ok routed ->
    print_endline "routes found:";
    print_newline ();
    List.iter
      (fun (id, route) -> Format.printf "  %-5s %a@." id Routing.pp_routing route)
      routed.Routing.routes;
    rule ();
    Format.printf "%a@." Spec.pp routed.Routing.spec;
    rule ();
    let spec = routed.Routing.spec in
    Printf.printf "paper rules: %s; extended rules alone: %s\n"
      (if Feasibility.is_feasible spec then "feasible" else "infeasible")
      (if Feasibility.is_feasible ~shared:true spec then "feasible" else "infeasible");
    print_endline
      "(alice's cross-chain bundle puts the bridge brokers at risk; only an";
    print_endline " indemnity absorbs that - exactly the paper's para-6 medicine)";
    print_newline ();
    let plan =
      match Feasibility.rescue_with_indemnities ~shared:true spec with
      | Some rescue -> (
        Printf.printf "indemnity rescue: total %s\n"
          (Report.Table.money (Feasibility.total_indemnity rescue));
        match rescue.Feasibility.plans with [ p ] -> p | _ -> failwith "one plan expected")
      | None -> failwith "expected a rescue"
    in
    Format.printf "%a@." Trust_core.Indemnity.pp_plan plan;
    (match Trust_sim.Harness.honest_run ~shared:true ~plan spec with
    | Error e -> print_endline e
    | Ok result ->
      Format.printf "@.%a@.@." Trust_sim.Engine.pp_result result;
      Format.printf "%a@." Trust_sim.Audit.pp_report
        (Trust_sim.Audit.audit spec ~plan result));
    rule ();
    (* the temporal extension: a tight deadline on the inner hop of the
       maps chain expires before the bundle can complete *)
    print_endline "same web, but the maps supplier only waits 3 ticks (within 3):";
    print_newline ();
    let tight_deals =
      List.map
        (fun d ->
          if String.equal d.Spec.id "maps.hop2" then Spec.with_deadline 3 d else d)
        spec.Spec.deals
    in
    let tight =
      Spec.make_exn
        ~personas:(Party.Map.bindings spec.Spec.personas |> List.map (fun (t, p) -> (t, p)))
        ~priorities:spec.Spec.priorities tight_deals
    in
    let tight_plan =
      match Feasibility.rescue_with_indemnities ~shared:true tight with
      | Some rescue -> (
        match rescue.Feasibility.plans with [ p ] -> Some p | _ -> None)
      | None -> None
    in
    (match Trust_sim.Harness.honest_run ~shared:true ?plan:tight_plan tight with
    | Error e -> print_endline e
    | Ok result ->
      let report = Trust_sim.Audit.audit tight ?plan:tight_plan result in
      Format.printf "%a@.@." Trust_sim.Engine.pp_result result;
      Printf.printf "preferred outcome reached: %b; any honest loss: %b\n"
        report.Trust_sim.Audit.all_preferred
        (not report.Trust_sim.Audit.honest_no_loss))
