open Exchange

type trust = { truster : Party.t; trustee : Party.t }

type request = {
  id : string;
  buyer : Party.t;
  seller : Party.t;
  price : Asset.money;
  good : string;
}

type routing =
  | Common_agent of Party.t
  | Buyer_persona
  | Seller_persona
  | Relay of Party.t list

type t = { spec : Spec.t; routes : (string * routing) list }

let mutual a b = [ { truster = a; trustee = b }; { truster = b; trustee = a } ]

let trusts_party trusts a b =
  List.exists (fun e -> Party.equal e.truster a && Party.equal e.trustee b) trusts

let common_agents trusts a b =
  List.filter_map
    (fun e ->
      if
        Party.is_trusted e.trustee && Party.equal e.truster a
        && trusts_party trusts b e.trustee
      then Some e.trustee
      else None)
    trusts
  |> List.sort_uniq Party.compare

(* How two principals can deal directly, if at all. Preference order:
   a neutral shared agent, then the seller-trusts-buyer persona (the
   direction that keeps resale chains feasible, §4.2.3 variant 1), then
   the reverse persona. *)
type link = Agent of Party.t | Trusts_buyer | Trusts_seller

let link_between trusts ~buyer ~seller =
  match common_agents trusts buyer seller with
  | agent :: _ -> Some (Agent agent)
  | [] ->
    if trusts_party trusts seller buyer then Some Trusts_buyer
    else if trusts_party trusts buyer seller then Some Trusts_seller
    else None

(* Breadth-first search for the shortest relay path from buyer to
   seller, hopping only across deal-capable pairs. [avoid] removes
   relays already reselling for another request: a broker with two
   resales carries two mutually pre-empting red edges — the poor-broker
   impasse (§5) — so batches must spread across distinct relays. *)
let relay_path trusts ~relays ~buyer ~seller =
  let nodes = Array.of_list (buyer :: seller :: relays) in
  let g = Trust_graph.Digraph.create ~initial_capacity:(Array.length nodes) () in
  let ids = Trust_graph.Digraph.add_nodes g (Array.length nodes) in
  ignore ids;
  Array.iteri
    (fun i p ->
      Array.iteri
        (fun j q ->
          if i <> j && link_between trusts ~buyer:p ~seller:q <> None then
            Trust_graph.Digraph.add_edge g i j)
        nodes)
    nodes;
  (* BFS from node 0 (buyer) to node 1 (seller) *)
  let prev = Array.make (Array.length nodes) (-1) in
  let visited = Array.make (Array.length nodes) false in
  let queue = Queue.create () in
  visited.(0) <- true;
  Queue.add 0 queue;
  let found = ref false in
  while (not !found) && not (Queue.is_empty queue) do
    let u = Queue.pop queue in
    List.iter
      (fun v ->
        if not visited.(v) then begin
          visited.(v) <- true;
          prev.(v) <- u;
          if v = 1 then found := true else Queue.add v queue
        end)
      (Trust_graph.Digraph.succ g u)
  done;
  if not !found then None
  else begin
    let rec walk v acc = if v = 0 then acc else walk prev.(v) (nodes.(v) :: acc) in
    Some (buyer :: walk 1 [])
  end

let route_request trusts ~relays ~avoid ~markup request =
  let relays =
    let usable = List.filter (fun r -> not (List.exists (Party.equal r) avoid)) relays in
    (* fall back to the full pool when avoidance disconnects the web *)
    if relay_path trusts ~relays:usable ~buyer:request.buyer ~seller:request.seller = None
    then relays
    else usable
  in
  let direct_deal ~id ~buyer ~seller ~price link =
    match link with
    | Agent agent ->
      (Spec.sale ~id ~buyer ~seller ~via:agent ~price ~good:request.good, [])
    | Trusts_buyer ->
      let role = Party.trusted (id ^ ".role") in
      (Spec.sale ~id ~buyer ~seller ~via:role ~price ~good:request.good, [ (role, buyer) ])
    | Trusts_seller ->
      let role = Party.trusted (id ^ ".role") in
      (Spec.sale ~id ~buyer ~seller ~via:role ~price ~good:request.good, [ (role, seller) ])
  in
  match link_between trusts ~buyer:request.buyer ~seller:request.seller with
  | Some link ->
    let deal, personas =
      direct_deal ~id:request.id ~buyer:request.buyer ~seller:request.seller
        ~price:request.price link
    in
    let routing =
      match link with
      | Agent agent -> Common_agent agent
      | Trusts_buyer -> Buyer_persona
      | Trusts_seller -> Seller_persona
    in
    Ok ([ deal ], personas, [], routing)
  | None -> (
    match relay_path trusts ~relays ~buyer:request.buyer ~seller:request.seller with
    | None ->
      Error
        (Printf.sprintf "request %s: no trust path from %s to %s" request.id
           (Party.name request.buyer) (Party.name request.seller))
    | Some path ->
      (* path = buyer, r1, ..., rk, seller; deal i joins path[i-1]
         (buyer side) with path[i] (seller side); the innermost deal
         carries the base price, each extra hop adds the markup. *)
      let hops = List.length path - 1 in
      let deals = ref [] and personas = ref [] and priorities = ref [] in
      List.iteri
        (fun i buyer_side ->
          if i < hops then begin
            let seller_side = List.nth path (i + 1) in
            let id = Printf.sprintf "%s.hop%d" request.id (i + 1) in
            let price = request.price + ((hops - 1 - i) * markup) in
            match link_between trusts ~buyer:buyer_side ~seller:seller_side with
            | None -> assert false (* BFS only walks deal-capable pairs *)
            | Some link ->
              let deal, extra = direct_deal ~id ~buyer:buyer_side ~seller:seller_side ~price link in
              deals := !deals @ [ deal ];
              personas := !personas @ extra;
              (* every relay secures its buyer before buying onward *)
              if i > 0 then
                priorities :=
                  !priorities
                  @ [
                      ( buyer_side,
                        { Spec.deal = Printf.sprintf "%s.hop%d" request.id i; side = Spec.Right }
                      );
                    ]
          end)
        path;
      let relays_used = List.filteri (fun i _ -> i > 0 && i < hops) path in
      Ok (!deals, !personas, !priorities, Relay (List.rev relays_used)))

let connect ?(relays = []) ?(markup = 100) ~trusts requests =
  let rec loop deals personas priorities routes used = function
    | [] -> (
      match Spec.make ~personas ~priorities deals with
      | Ok spec -> Ok { spec; routes = List.rev routes }
      | Error es -> Error (String.concat "; " es))
    | request :: rest -> (
      match route_request trusts ~relays ~avoid:used ~markup request with
      | Error e -> Error e
      | Ok (ds, ps, prios, routing) ->
        let used =
          match routing with Relay chain -> chain @ used | _ -> used
        in
        loop (deals @ ds) (personas @ ps) (priorities @ prios)
          ((request.id, routing) :: routes)
          used rest)
  in
  loop [] [] [] [] [] requests

let pp_routing ppf = function
  | Common_agent agent -> Format.fprintf ppf "via shared agent %s" (Party.name agent)
  | Buyer_persona -> Format.pp_print_string ppf "seller trusts buyer (buyer persona)"
  | Seller_persona -> Format.pp_print_string ppf "buyer trusts seller (seller persona)"
  | Relay relays ->
    Format.fprintf ppf "relayed through %s"
      (String.concat " -> " (List.map Party.name relays))
