examples/quickstart.ml: Asset Exchange Format Party Spec Trust_core Trust_lang Trust_sim
