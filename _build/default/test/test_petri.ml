(* The Petri-net substrate and the §7.4 encoding: net semantics, bounded
   reachability, Karp-Miller coverability, and agreement between the
   exhaustive net exploration and the greedy graph reduction. *)

module Net = Petri.Net
module Analysis = Petri.Analysis
module Encode = Petri.Encode

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

(* A two-place producer/consumer net: produce moves nothing in, consume
   needs a token. *)
let simple_net () =
  let net = Net.create () in
  let buffer = Net.add_place ~name:"buffer" net in
  let consumed = Net.add_place ~name:"consumed" net in
  let produce = Net.add_transition ~name:"produce" net ~pre:[] ~post:[ (buffer, 1) ] in
  let consume =
    Net.add_transition ~name:"consume" net ~pre:[ (buffer, 1) ] ~post:[ (consumed, 1) ]
  in
  (net, buffer, consumed, produce, consume)

let test_net_construction () =
  let net, _, _, _, _ = simple_net () in
  check_int "places" 2 (Net.place_count net);
  check_int "transitions" 2 (Net.transition_count net);
  Alcotest.(check string) "names" "buffer" (Net.place_name net 0);
  Alcotest.(check string) "transition names" "consume" (Net.transition_name net 1)

let test_net_validation () =
  let net = Net.create () in
  let p = Net.add_place net in
  Alcotest.check_raises "zero weight" (Invalid_argument "Net.add_transition: non-positive weight")
    (fun () -> ignore (Net.add_transition net ~pre:[ (p, 0) ] ~post:[]));
  Alcotest.check_raises "unknown place" (Invalid_argument "Net.add_transition: unknown place")
    (fun () -> ignore (Net.add_transition net ~pre:[ (42, 1) ] ~post:[]))

let test_enabled_fire () =
  let net, buffer, consumed, produce, consume = simple_net () in
  let m0 = Net.Marking.initial net [] in
  check "produce enabled" true (Net.enabled net m0 produce);
  check "consume disabled" false (Net.enabled net m0 consume);
  let m1 = Net.fire net m0 produce in
  check_int "token produced" 1 (Net.Marking.tokens m1 buffer);
  let m2 = Net.fire net m1 consume in
  check_int "buffer drained" 0 (Net.Marking.tokens m2 buffer);
  check_int "consumed" 1 (Net.Marking.tokens m2 consumed);
  Alcotest.check_raises "firing disabled" (Invalid_argument "Net.fire: transition not enabled")
    (fun () -> ignore (Net.fire net m0 consume))

let test_enabled_transitions () =
  let net, _, _, produce, consume = simple_net () in
  let m0 = Net.Marking.initial net [] in
  Alcotest.(check (list int)) "only produce" [ produce ] (Net.enabled_transitions net m0);
  let m1 = Net.fire net m0 produce in
  Alcotest.(check (list int)) "both" [ produce; consume ] (Net.enabled_transitions net m1)

let test_marking_ops () =
  let net, buffer, consumed, _, _ = simple_net () in
  let m = Net.Marking.initial net [ (buffer, 2); (consumed, 1) ] in
  check_int "initial tokens add up" 2 (Net.Marking.tokens m buffer);
  let m' = Net.Marking.set m buffer 5 in
  check_int "set" 5 (Net.Marking.tokens m' buffer);
  check_int "original untouched" 2 (Net.Marking.tokens m buffer);
  check "covers" true (Net.Marking.covers m' m);
  check "not covered" false (Net.Marking.covers m m')

(* A bounded mutual-exclusion net for reachability. *)
let mutex_net () =
  let net = Net.create () in
  let idle1 = Net.add_place ~name:"idle1" net in
  let idle2 = Net.add_place ~name:"idle2" net in
  let crit1 = Net.add_place ~name:"crit1" net in
  let crit2 = Net.add_place ~name:"crit2" net in
  let lock = Net.add_place ~name:"lock" net in
  let enter1 = Net.add_transition net ~pre:[ (idle1, 1); (lock, 1) ] ~post:[ (crit1, 1) ] in
  let exit1 = Net.add_transition net ~pre:[ (crit1, 1) ] ~post:[ (idle1, 1); (lock, 1) ] in
  let enter2 = Net.add_transition net ~pre:[ (idle2, 1); (lock, 1) ] ~post:[ (crit2, 1) ] in
  let exit2 = Net.add_transition net ~pre:[ (crit2, 1) ] ~post:[ (idle2, 1); (lock, 1) ] in
  ignore (enter1, exit1, enter2, exit2);
  let m0 = Net.Marking.initial net [ (idle1, 1); (idle2, 1); (lock, 1) ] in
  (net, m0, crit1, crit2)

let test_reachability_mutex () =
  let net, m0, crit1, crit2 = mutex_net () in
  (* mutual exclusion: both critical sections never marked together *)
  let violation m = Net.Marking.tokens m crit1 > 0 && Net.Marking.tokens m crit2 > 0 in
  let r = Analysis.reachable net m0 ~goal:violation in
  check "mutex holds" true (r.Analysis.verdict = `Exhausted);
  (* exactly three reachable markings: both idle, or one in its
     critical section *)
  Alcotest.(check (option int)) "state space" (Some 3) (Analysis.state_space_size net m0)

let test_reachability_found_trace () =
  let net, m0, crit1, _ = mutex_net () in
  let r = Analysis.reachable net m0 ~goal:(fun m -> Net.Marking.tokens m crit1 > 0) in
  match r.Analysis.verdict with
  | `Found trace ->
    (* replaying the trace reaches the goal *)
    let final = List.fold_left (Net.fire net) m0 trace in
    check "trace valid" true (Net.Marking.tokens final crit1 > 0)
  | `Exhausted | `Bound_hit -> Alcotest.fail "crit1 is reachable"

let test_reachability_bound () =
  (* unbounded producer: the bound must trip *)
  let net, _, _, _, _ = simple_net () in
  let m0 = Net.Marking.initial net [] in
  let r = Analysis.reachable ~max_states:50 net m0 ~goal:(fun _ -> false) in
  check "bound hit" true (r.Analysis.verdict = `Bound_hit);
  check "stats flag" true r.Analysis.stats.Analysis.hit_bound

let test_coverability_unbounded () =
  (* Karp-Miller answers coverability on the unbounded net the bounded
     BFS cannot finish. *)
  let net, buffer, _, _, _ = simple_net () in
  let m0 = Net.Marking.initial net [] in
  let target = Net.Marking.initial net [ (buffer, 40) ] in
  let r = Analysis.coverable net m0 ~target in
  check "40 tokens coverable" true (r.Analysis.verdict = `Coverable)

let test_coverability_negative () =
  let net, m0, crit1, crit2 = mutex_net () in
  let target =
    Net.Marking.set (Net.Marking.set (Net.Marking.initial net []) crit1 1) crit2 1
  in
  let r = Analysis.coverable net m0 ~target in
  check "mutex violation not coverable" true (r.Analysis.verdict = `Not_coverable)

(* §7.4 encoding *)

let test_encode_shape () =
  let enc = Encode.of_spec Workload.Scenarios.example1 in
  (* six edges -> twelve places, two transitions per edge *)
  check_int "places" 12 (Net.place_count enc.Encode.net);
  check_int "transitions" 12 (Net.transition_count enc.Encode.net)

let test_encode_agreement_scenarios () =
  List.iter
    (fun (name, spec) ->
      let verdict, _ = Encode.feasible (Encode.of_spec spec) in
      let expected = Trust_core.Feasibility.is_feasible spec in
      let got = match verdict with `Feasible -> true | `Infeasible -> false | `Unknown -> not expected in
      if got <> expected then Alcotest.failf "%s: petri disagrees with the reduction" name)
    Workload.Scenarios.all

let test_reduction_orders_counted () =
  let enc = Encode.of_spec Workload.Scenarios.example1 in
  (* the full reduction-order state space of example 1 *)
  Alcotest.(check (option int)) "sixteen markings" (Some 16) (Encode.reduction_orders enc)

let test_exponential_bundles () =
  let states k =
    match Encode.reduction_orders (Encode.of_spec (Workload.Gen.bundle ~docs:k)) with
    | Some n -> n
    | None -> Alcotest.fail "bound hit"
  in
  check "state space explodes" true (states 6 > 50 * states 3)

let prop_agreement =
  QCheck2.Test.make
    ~name:"exhaustive net exploration agrees with the greedy reduction (confluence)" ~count:60
    QCheck2.Gen.int (fun seed ->
      let rng = Workload.Prng.create (Int64.of_int seed) in
      let mix = { Workload.Gen.default_mix with Workload.Gen.max_fan = 3; max_bundle = 3 } in
      let spec = Workload.Gen.random_transaction rng mix in
      let expected = Trust_core.Feasibility.is_feasible spec in
      match Encode.feasible ~max_states:200_000 (Encode.of_spec spec) with
      | `Feasible, _ -> expected
      | `Infeasible, _ -> not expected
      | `Unknown, _ -> true)

let () =
  Alcotest.run "petri"
    [
      ( "nets",
        [
          Alcotest.test_case "construction" `Quick test_net_construction;
          Alcotest.test_case "validation" `Quick test_net_validation;
          Alcotest.test_case "enable and fire" `Quick test_enabled_fire;
          Alcotest.test_case "enabled transitions" `Quick test_enabled_transitions;
          Alcotest.test_case "marking operations" `Quick test_marking_ops;
        ] );
      ( "analyses",
        [
          Alcotest.test_case "mutex reachability" `Quick test_reachability_mutex;
          Alcotest.test_case "witness traces replay" `Quick test_reachability_found_trace;
          Alcotest.test_case "bound trips" `Quick test_reachability_bound;
          Alcotest.test_case "coverability on unbounded nets" `Quick test_coverability_unbounded;
          Alcotest.test_case "coverability negative" `Quick test_coverability_negative;
        ] );
      ( "encoding (paper 7.4)",
        [
          Alcotest.test_case "shape" `Quick test_encode_shape;
          Alcotest.test_case "agreement on scenarios" `Quick test_encode_agreement_scenarios;
          Alcotest.test_case "reduction orders counted" `Quick test_reduction_orders_counted;
          Alcotest.test_case "bundles explode exponentially" `Quick test_exponential_bundles;
        ] );
      ("properties", [ QCheck_alcotest.to_alcotest prop_agreement ]);
    ]
