test/test_interaction.mli:
