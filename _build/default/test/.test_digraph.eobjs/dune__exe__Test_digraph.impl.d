test/test_digraph.ml: Alcotest Hashtbl List QCheck2 QCheck_alcotest Trust_graph
