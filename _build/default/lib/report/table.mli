(** Plain-text tables for the experiment harness: fixed-width columns,
    a header rule, right-aligned numeric-looking cells. *)

val render : header:string list -> string list list -> string
(** Rows shorter than the header are padded with empty cells. *)

val print : header:string list -> string list list -> unit

val section : string -> unit
(** Prints a titled horizontal rule to stdout. *)

val kv : (string * string) list -> string
(** Aligned key/value block. *)

val money : int -> string
(** Cents to ["$d[.cc]"], matching {!Exchange.Asset.pp_money}. *)
