type t = {
  fd : Unix.file_descr;
  decoder : Frame.decoder;
  mutable inbox : string list;  (** decoded payloads not yet consumed *)
  mutable server : string;
}

let parse_addr s =
  match String.index_opt s ':' with
  | None -> Ok (Unix.ADDR_UNIX s)
  | Some i -> (
    let scheme = String.sub s 0 i in
    let rest = String.sub s (i + 1) (String.length s - i - 1) in
    match scheme with
    | "unix" -> Ok (Unix.ADDR_UNIX rest)
    | "tcp" -> (
      match String.rindex_opt rest ':' with
      | None -> Error (Printf.sprintf "tcp address %S needs HOST:PORT" rest)
      | Some j -> (
        let host = String.sub rest 0 j in
        let port = String.sub rest (j + 1) (String.length rest - j - 1) in
        match int_of_string_opt port with
        | None -> Error (Printf.sprintf "bad port %S" port)
        | Some port -> (
          match
            try Some (Unix.inet_addr_of_string host)
            with Failure _ -> (
              match Unix.gethostbyname host with
              | { Unix.h_addr_list = [||]; _ } -> None
              | h -> Some h.Unix.h_addr_list.(0)
              | exception Not_found -> None)
          with
          | None -> Error (Printf.sprintf "cannot resolve host %S" host)
          | Some addr -> Ok (Unix.ADDR_INET (addr, port)))))
    | _ -> Error (Printf.sprintf "unknown address scheme %S (use unix: or tcp:)" scheme))

let recv_payload t =
  match t.inbox with
  | p :: rest ->
    t.inbox <- rest;
    Ok p
  | [] ->
    let buf = Bytes.create 65536 in
    let rec fill () =
      match Unix.read t.fd buf 0 (Bytes.length buf) with
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> fill ()
      | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) ->
        Error "timed out waiting for a response"
      | exception Unix.Unix_error (e, _, _) -> Error (Unix.error_message e)
      | 0 -> Error "server closed the connection"
      | n -> (
        let frames =
          List.filter_map
            (function Frame.Frame p -> Some p | Frame.Oversized _ -> None)
            (Frame.feed t.decoder buf n)
        in
        if Frame.poisoned t.decoder then Error "oversized response frame"
        else
          match frames with
          | [] -> fill ()
          | p :: rest ->
            t.inbox <- rest;
            Ok p)
    in
    fill ()

let recv t =
  match recv_payload t with
  | Error _ as e -> e
  | Ok payload -> Wire.decode_response payload

let request t req =
  match Frame.write_frame t.fd (Wire.encode_request req) with
  | exception Unix.Unix_error (e, _, _) -> Error (Unix.error_message e)
  | () -> recv t

let submit t ~id ~spec = request t (Wire.Submit { id; spec })

(* Drain the daemon's trace ring: unwrap the text frame and the base64
   transport, returning raw binary dump bytes ready for Ring.decode. *)
let trace t ~id =
  match request t (Wire.Trace { id }) with
  | Error e -> Error e
  | Ok (Wire.Text { kind = "ring"; text; _ }) -> Trust_obs.B64.decode text
  | Ok (Wire.Refused { reason; _ }) -> Error ("refused: " ^ reason)
  | Ok _ -> Error "trace: unexpected response"

let close t = try Unix.close t.fd with Unix.Unix_error _ -> ()

let connect ?(timeout = 10.) addr =
  match parse_addr addr with
  | Error _ as e -> e
  | Ok sockaddr -> (
    let domain = Unix.domain_of_sockaddr sockaddr in
    let fd = Unix.socket domain Unix.SOCK_STREAM 0 in
    match Unix.connect fd sockaddr with
    | exception Unix.Unix_error (e, _, _) ->
      (try Unix.close fd with Unix.Unix_error _ -> ());
      Error (Printf.sprintf "connect %s: %s" addr (Unix.error_message e))
    | () -> (
      (try Unix.setsockopt_float fd Unix.SO_RCVTIMEO timeout
       with Unix.Unix_error _ | Invalid_argument _ -> ());
      let t = { fd; decoder = Frame.create (); inbox = []; server = "" } in
      match request t (Wire.Hello { version = Wire.version }) with
      | Ok (Wire.Welcome { server; _ }) ->
        t.server <- server;
        Ok t
      | Ok (Wire.Refused { reason; _ }) ->
        close t;
        Error ("handshake refused: " ^ reason)
      | Ok _ ->
        close t;
        Error "handshake: unexpected response"
      | Error e ->
        close t;
        Error ("handshake: " ^ e)))

let server t = t.server
