(* Indemnities (§6): Fig. 7's $90 vs $70 orderings, greedy optimality,
   deposits and splits. *)

open Exchange
module Indemnity = Trust_core.Indemnity

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let fig7 = Workload.Scenarios.fig7
let owner = Workload.Scenarios.fig7_consumer

let test_fig7_greedy_total () =
  let plan = Indemnity.plan_greedy fig7 ~owner in
  check_int "order #2 totals $70" (Asset.dollars 70) plan.Indemnity.total;
  check_int "two offers" 2 (List.length plan.Indemnity.offers)

let test_fig7_greedy_order () =
  (* Broker #3 first ($30 aside), then Broker #2 ($40); Broker #1 last,
     uncovered. *)
  let plan = Indemnity.plan_greedy fig7 ~owner in
  match plan.Indemnity.offers with
  | [ first; second ] ->
    check "b3 offers first" true (Party.equal first.Indemnity.offered_by (Party.broker "b3"));
    check_int "sets $30 aside" (Asset.dollars 30) first.Indemnity.amount;
    check "b2 next" true (Party.equal second.Indemnity.offered_by (Party.broker "b2"));
    check_int "sets $40 aside" (Asset.dollars 40) second.Indemnity.amount
  | _ -> Alcotest.fail "expected two offers"

let test_fig7_worst_total () =
  let plan = Indemnity.plan_worst fig7 ~owner in
  check_int "order #1 totals $90" (Asset.dollars 90) plan.Indemnity.total

let test_fig7_exhaustive () =
  check_int "greedy is optimal" (Asset.dollars 70) (Indemnity.exhaustive_minimum fig7 ~owner)

let test_offer_routing () =
  (* The offer is escrowed with the intermediary of the covered deal. *)
  let offer = Indemnity.offer_for fig7 ~owner (Workload.Scenarios.fig7_sale_ref 1) in
  check "deposited with t1" true (Party.equal offer.Indemnity.via (Party.trusted "t1"));
  check "offered by the seller" true (Party.equal offer.Indemnity.offered_by (Party.broker "b1"));
  check_int "amount covers the others" (Asset.dollars 50) offer.Indemnity.amount

let test_plan_for_order_validation () =
  Alcotest.check_raises "not a permutation"
    (Invalid_argument "Indemnity.plan_for_order: not a permutation of the owner's pieces")
    (fun () ->
      ignore (Indemnity.plan_for_order fig7 ~owner [ Workload.Scenarios.fig7_sale_ref 1 ]))

let test_single_piece_no_offers () =
  let spec = Workload.Scenarios.simple_sale in
  let plan = Indemnity.plan_greedy spec ~owner:(Party.consumer "c") in
  check_int "no offers for a single piece" 0 (List.length plan.Indemnity.offers);
  check_int "zero total" 0 plan.Indemnity.total

let test_splittable () =
  check "fig7 consumer splittable" true (Indemnity.splittable fig7 ~owner);
  (* broker conjunctions carry a red edge: not splittable (§6: type-2 only) *)
  check "broker not splittable" false (Indemnity.splittable fig7 ~owner:(Party.broker "b1"));
  check "producer not splittable" false
    (Indemnity.splittable fig7 ~owner:(Party.producer "s1"));
  check "trusted not splittable" false (Indemnity.splittable fig7 ~owner:(Party.trusted "t1"))

let test_apply_enables () =
  let plan = Indemnity.plan_greedy fig7 ~owner in
  let split = Indemnity.apply plan fig7 in
  check "split spec feasible" true (Trust_core.Feasibility.is_feasible split);
  check "original still infeasible" false (Trust_core.Feasibility.is_feasible fig7)

let test_deposits_refunds () =
  let plan = Indemnity.plan_greedy fig7 ~owner in
  let deposits = Indemnity.deposits plan and refunds = Indemnity.refunds plan in
  check_int "one deposit per offer" 2 (List.length deposits);
  check_int "one refund per offer" 2 (List.length refunds);
  List.iter2
    (fun d r ->
      match (d, r) with
      | Action.Do tr, Action.Undo tr' -> check "refund mirrors deposit" true (tr = tr')
      | _ -> Alcotest.fail "deposit/refund shapes")
    deposits refunds

let test_rescued_run () =
  match Indemnity.rescued_run fig7 ~owner with
  | None -> Alcotest.fail "fig7 rescue must succeed"
  | Some (plan, seq) ->
    check_int "rescue totals $70" (Asset.dollars 70) plan.Indemnity.total;
    check "sequence physical" true (Trust_core.Execution.check_physical seq = Ok ())

let test_example2_single_indemnity () =
  (* §6's narrative choice: Broker #1 escrows the price of document #2
     ($20) to split piece 1. *)
  let spec = Workload.Scenarios.example2 in
  let owner = Workload.Scenarios.example2_consumer in
  let paper_order = [ Workload.Scenarios.example2_sale_ref 1; Workload.Scenarios.example2_sale_ref 2 ] in
  let paper_plan = Indemnity.plan_for_order spec ~owner paper_order in
  check_int "one offer" 1 (List.length paper_plan.Indemnity.offers);
  check_int "the price of the other document" (Asset.dollars 20) paper_plan.Indemnity.total;
  check "b1 offers it" true
    (Party.equal (List.hd paper_plan.Indemnity.offers).Indemnity.offered_by (Party.broker "b1"));
  check "feasible after" true
    (Trust_core.Feasibility.is_feasible (Indemnity.apply paper_plan spec));
  (* The greedy minimum is even cheaper: cover the $20 piece with the $10
     price of the other document. *)
  let greedy = Indemnity.plan_greedy spec ~owner in
  check_int "greedy pays only $10" (Asset.dollars 10) greedy.Indemnity.total;
  check "greedy also rescues" true
    (Trust_core.Feasibility.is_feasible (Indemnity.apply greedy spec))

(* greedy = (k-2) * S + min over the general fan *)

let prop_greedy_optimal =
  QCheck2.Test.make ~name:"greedy ordering minimises the total indemnity" ~count:60
    QCheck2.Gen.(list_size (int_range 2 5) (int_range 1 50))
    (fun prices ->
      let prices = List.map Asset.dollars prices in
      let spec = Workload.Gen.fan ~prices in
      let owner = Workload.Gen.fan_consumer in
      let greedy = (Indemnity.plan_greedy spec ~owner).Indemnity.total in
      greedy = Indemnity.exhaustive_minimum spec ~owner)

let prop_greedy_formula =
  QCheck2.Test.make ~name:"greedy total equals (k-2) * S + min price" ~count:60
    QCheck2.Gen.(list_size (int_range 2 6) (int_range 1 50))
    (fun dollar_prices ->
      let prices = List.map Asset.dollars dollar_prices in
      let spec = Workload.Gen.fan ~prices in
      let owner = Workload.Gen.fan_consumer in
      let s = List.fold_left ( + ) 0 prices in
      let k = List.length prices in
      let expected = ((k - 2) * s) + List.fold_left min max_int prices in
      (Indemnity.plan_greedy spec ~owner).Indemnity.total = expected)

let prop_apply_fan_feasible =
  QCheck2.Test.make ~name:"greedy splits always rescue a fan" ~count:60
    QCheck2.Gen.(list_size (int_range 2 6) (int_range 1 50))
    (fun dollar_prices ->
      let prices = List.map Asset.dollars dollar_prices in
      let spec = Workload.Gen.fan ~prices in
      let plan = Indemnity.plan_greedy spec ~owner:Workload.Gen.fan_consumer in
      Trust_core.Feasibility.is_feasible (Indemnity.apply plan spec))

let () =
  Alcotest.run "indemnity"
    [
      ( "figure 7",
        [
          Alcotest.test_case "greedy total $70" `Quick test_fig7_greedy_total;
          Alcotest.test_case "greedy order matches order #2" `Quick test_fig7_greedy_order;
          Alcotest.test_case "worst ordering $90" `Quick test_fig7_worst_total;
          Alcotest.test_case "exhaustive agrees" `Quick test_fig7_exhaustive;
          Alcotest.test_case "offer routing" `Quick test_offer_routing;
        ] );
      ( "planning",
        [
          Alcotest.test_case "order validation" `Quick test_plan_for_order_validation;
          Alcotest.test_case "single piece" `Quick test_single_piece_no_offers;
          Alcotest.test_case "splittable conjunctions" `Quick test_splittable;
          Alcotest.test_case "apply enables the exchange" `Quick test_apply_enables;
          Alcotest.test_case "deposits and refunds" `Quick test_deposits_refunds;
          Alcotest.test_case "rescued run" `Quick test_rescued_run;
          Alcotest.test_case "example 2 single indemnity" `Quick test_example2_single_indemnity;
        ] );
      ( "properties",
        List.map QCheck_alcotest.to_alcotest
          [ prop_greedy_optimal; prop_greedy_formula; prop_apply_fan_feasible ] );
    ]
