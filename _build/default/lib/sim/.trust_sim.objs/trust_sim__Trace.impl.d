lib/sim/trace.ml: Action Asset Engine Exchange Format List Party Spec
