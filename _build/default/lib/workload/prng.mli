(** Deterministic SplitMix64 pseudo-random numbers.

    The workload generators and randomized-order reduction tests need
    reproducible randomness that is independent of the stdlib [Random]
    state; a fixed seed must generate the same workload on every run so
    EXPERIMENTS.md numbers are stable. *)

type t

val create : int64 -> t
(** Seeded generator. Distinct seeds give independent streams. *)

val copy : t -> t

val next_int64 : t -> int64
(** Uniform over all 2{^64} values. *)

val int : t -> int -> int
(** [int t bound] is uniform in [\[0, bound)]. @raise Invalid_argument
    when [bound <= 0]. *)

val bool : t -> bool

val float : t -> float
(** Uniform in [\[0, 1)]. *)

val pick : t -> 'a list -> 'a
(** Uniform element. @raise Invalid_argument on the empty list. *)

val shuffle : t -> 'a list -> 'a list
(** Fisher–Yates permutation. *)

val split : t -> t
(** An independent generator derived from (and advancing) [t]. *)
