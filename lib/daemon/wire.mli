(** The daemon's request/response vocabulary: one JSON object per
    {!Frame}, ["type"] discriminated.

    The first frame on a connection must be [hello] carrying the
    protocol version; the daemon answers [welcome] or [refused] (wrong
    version) and closes on refusal. After the handshake, requests carry
    a client-chosen [id] echoed verbatim in the response, so pipelined
    requests correlate even though admission can reorder completions
    around [busy] rejections.

    Submissions carry the spec as DSL source text — the same surface
    every other entry point parses — so the wire format never grows a
    second spec encoding that could drift from the language. *)

val version : int

type request =
  | Hello of { version : int }
  | Submit of { id : int; spec : string }  (** DSL source *)
  | Ping of { id : int }
  | Metrics of { id : int }  (** deterministic snapshot, exposition text *)
  | Stats of { id : int }  (** daemon counters as a JSON object *)
  | Trace of { id : int }
      (** drain the live trace ring: the response is a [text] frame of
          kind ["ring"] whose body is the base64 of a binary ring dump
          ({!Trust_obs.Ring.decode} parses it) — records accumulated
          since the previous [trace] request. Additive in protocol
          version 1: older clients simply never send it. *)

type response =
  | Welcome of { version : int; server : string }
  | Result of {
      id : int;
      status : string;  (** ["settled" | "expired" | "aborted" | "error"] *)
      exit_code : int;  (** the CLI contract: 0 settled, 1 not, 2 error *)
      cache_hit : bool;
      ticks : int;
      events : int;
      attempts : int;
      exposure_peak : int;
      exposure_ticks : int;
      exposure_violations : int;
      reason : string option;  (** abort/parse reason *)
    }
  | Busy of { id : int }  (** admission bound hit; retry later *)
  | Pong of { id : int }
  | Text of { id : int; kind : string; text : string }
  | Refused of { id : int option; reason : string }
      (** protocol error; the connection closes after this *)

val encode_request : request -> string
val encode_response : response -> string

val decode_request : string -> (request, string) result
val decode_response : string -> (response, string) result
