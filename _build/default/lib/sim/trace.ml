open Exchange

type t = { spec : Spec.t; result : Engine.result }

let of_result spec result = { spec; result }
let log t = t.result.Engine.log

let view_of t party =
  List.filter
    (fun d ->
      Party.equal (Action.performer d.Engine.action) party
      || Party.equal (Action.beneficiary d.Engine.action) party)
    t.result.Engine.log

let performed_by t party =
  List.filter_map
    (fun d ->
      if Party.equal (Action.performer d.Engine.action) party then Some d.Engine.action
      else None)
    t.result.Engine.log

let final_state t = t.result.Engine.state

type exposure = { at : int; outlay : Asset.money; goods_out : int; covered : Asset.money }

(* What an asset is worth to a given party: money at face value; a
   document at what the party pays for it (its cost basis) or, failing
   that, what it is paid for it. *)
let price_for spec party asset =
  match asset with
  | Asset.Money m -> m
  | Asset.Document _ ->
    let deals_pricing ~receiving =
      List.filter_map
        (fun (cref, d) ->
          let mine = Party.equal (Spec.commitment_principal d cref.Spec.side) party in
          let flow =
            if receiving then Spec.commitment_expects d cref.Spec.side
            else Spec.commitment_sends d cref.Spec.side
          in
          if mine && Asset.equal flow asset then
            let counter_flow =
              if receiving then Spec.commitment_sends d cref.Spec.side
              else Spec.commitment_expects d cref.Spec.side
            in
            Some (Asset.value counter_flow)
          else None)
        (Spec.commitments spec)
    in
    (match deals_pricing ~receiving:true with
    | price :: _ -> price
    | [] -> ( match deals_pricing ~receiving:false with price :: _ -> price | [] -> 0))

let exposure_profile t party =
  let price = price_for t.spec party in
  let outlay = ref 0 and goods_out = ref 0 and covered = ref 0 in
  let apply action =
    match action with
    | Action.Do tr ->
      if Party.equal tr.Action.source party then begin
        outlay := !outlay + price tr.Action.asset;
        if Asset.is_document tr.Action.asset then incr goods_out
      end;
      if Party.equal tr.Action.target party then covered := !covered + price tr.Action.asset
    | Action.Undo tr ->
      (* the asset returns from target to source *)
      if Party.equal tr.Action.source party then begin
        outlay := !outlay - price tr.Action.asset;
        if Asset.is_document tr.Action.asset then decr goods_out
      end;
      if Party.equal tr.Action.target party then covered := !covered - price tr.Action.asset
    | Action.Notify _ -> ()
  in
  (* one sample per tick, after all of that tick's deliveries *)
  let rec walk samples = function
    | [] -> List.rev samples
    | d :: rest ->
      apply d.Engine.action;
      let tick = d.Engine.at in
      let rest_same, rest =
        List.partition (fun d' -> d'.Engine.at = tick) rest
      in
      List.iter (fun d' -> apply d'.Engine.action) rest_same;
      walk ({ at = tick; outlay = !outlay; goods_out = !goods_out; covered = !covered } :: samples) rest
  in
  walk [] t.result.Engine.log

let peak_exposure t party =
  List.fold_left
    (fun peak s -> max peak (max 0 (s.outlay - s.covered)))
    0 (exposure_profile t party)

let total_peak_exposure t =
  List.fold_left (fun acc p -> acc + peak_exposure t p) 0 (Spec.principals t.spec)

let duration t =
  List.fold_left (fun acc d -> max acc d.Engine.at) 0 t.result.Engine.log

let pp_profile ppf profile =
  Format.fprintf ppf "@[<v>";
  List.iter
    (fun s ->
      Format.fprintf ppf "t=%-4d outlay=%a covered=%a goods_out=%d uncovered=%a@," s.at
        Asset.pp_money s.outlay Asset.pp_money s.covered s.goods_out Asset.pp_money
        (max 0 (s.outlay - s.covered)))
    profile;
  Format.fprintf ppf "@]"
